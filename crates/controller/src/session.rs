//! The control process.
//!
//! "The task of organizing the parts of the measurement system and
//! providing a control interface to the user is performed by the
//! control process (or controller). … The controller is a command
//! interpreter. It provides the user with a concise menu of commands
//! to use in the measurement and control of one or more distributed
//! computations." (§3.3)
//!
//! [`Controller::exec`] interprets one command line and returns the
//! text a user at the terminal would see; the Appendix-B transcript is
//! reproduced by the `quickstart` example. The controller itself runs
//! as a process inside the simulation (so all its communication goes
//! over simulated IPC through the meterdaemons), driven from the host.

use crate::job::{Job, ManagedProc, ProcAction, ProcState};
use dpm_analysis::{ByzReport, MutexReport, Trace};
use dpm_controlplane::{ControlEvent, ControlLog, JobTable, DEFAULT_LEASE_MS};
use dpm_filter::{parse_host_port, Descriptions, FilterRole, LogRecord, Rules};
use dpm_live::{LiveWatch, WindowSnapshot};
use dpm_logstore::{seals_name, seg_ids_of, Backend, OwnedFrame, StoreReader, StoreTail};
use dpm_meter::MeterFlags;
use dpm_meterd::{
    read_frame, rpc_call_retry, FilterSpec, LogSinkMode, Reply, Request, RpcStatus, RPC_TIMEOUT_MS,
};
use dpm_simos::{Backoff, BindTo, Cluster, Domain, Pid, Proc, SockType, SysError, SysResult, Uid};
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::mpsc;
use std::sync::Arc;

/// Maximum nesting depth of `source` scripts (§4.3).
const MAX_SOURCE_DEPTH: usize = 16;

/// A filter process the controller created.
#[derive(Debug, Clone)]
pub struct FilterInfo {
    /// Controller-local name (`f1`).
    pub name: String,
    /// Machine it runs on.
    pub machine: String,
    /// Its pid.
    pub pid: Pid,
    /// The port metered processes' meter connections go to.
    pub port: u16,
    /// Its log file path on its machine (for `log=store`, the prefix
    /// its segment files live under).
    pub logfile: String,
    /// Where its accepted records go: text log or binary store.
    pub log_mode: LogSinkMode,
    /// How many shards it runs (one segment stream each in store
    /// mode).
    pub shards: u32,
    /// Its place in the filter tree: classic standalone `leaf`,
    /// forwarding `edge` pre-filter, or merging `aggregate`.
    pub role: FilterRole,
    /// `host:port` of the parent filter (edges always; aggregates
    /// optionally); empty when the filter has no parent.
    pub upstream: String,
    /// The descriptions it filters with — kept so `getlog` can render
    /// store frames as text without re-fetching the file.
    pub desc: Descriptions,
}

/// Live-streaming state the controller keeps per watched filter:
/// byte cursors into the filter's store segments, the incremental
/// trace they feed, and how much of the seal manifest has been shown.
/// `watch` and `tail` share this, so however the user mixes them every
/// stored frame reaches the live trace exactly once.
struct WatchState {
    tail: StoreTail,
    watch: LiveWatch,
    /// Sealed segments fully read — never fetched again.
    consumed: HashSet<String>,
    /// Seal-manifest lines already echoed to the transcript.
    seal_lines: usize,
    /// The most recently closed window, for programmatic callers.
    last: Option<WindowSnapshot>,
}

/// The interactive measurement-session controller.
pub struct Controller {
    proc: Proc,
    cluster: Arc<Cluster>,
    machine: String,
    control_port: u16,
    jobs: HashMap<String, Job>,
    job_order: Vec<String>,
    filters: Vec<FilterInfo>,
    /// Per-filter live streaming state, keyed by filter name.
    watches: HashMap<String, WatchState>,
    next_filter_port: u16,
    notifications: Arc<Mutex<VecDeque<Request>>>,
    /// Stack of `sink` output files (top active); empty = terminal.
    sinks: Vec<String>,
    /// Full terminal transcript of the session.
    transcript: String,
    /// Armed after a first `die` with active processes.
    die_armed: bool,
    /// Signals the parked controller-process body to exit.
    quit_tx: Option<mpsc::Sender<()>>,
    done: bool,
    /// The durable control log, when control-plane replication is
    /// enabled: every state mutation this controller performs is
    /// appended, so a standby can reconstruct and adopt the session.
    control_log: Option<ControlLog>,
    /// Expiry (µs, simulated time) of the lease this controller holds
    /// on each job it owns through the control log.
    leases: HashMap<String, u64>,
}

impl std::fmt::Debug for Controller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Controller")
            .field("machine", &self.machine)
            .field("jobs", &self.job_order)
            .field("filters", &self.filters.len())
            .finish_non_exhaustive()
    }
}

impl Controller {
    /// Starts a controller on `machine` for user `uid`. Spawns the
    /// control process, binds its notification socket on
    /// `control_port`, and forks the listener that receives daemon-
    /// initiated state-change and I/O messages.
    ///
    /// # Errors
    ///
    /// `ENOENT` for an unknown machine; socket errors propagate.
    pub fn start(
        cluster: &Arc<Cluster>,
        machine: &str,
        uid: Uid,
        control_port: u16,
    ) -> SysResult<Controller> {
        let m = cluster.machine(machine).ok_or(SysError::Enoent)?;
        let (quit_tx, quit_rx) = mpsc::channel::<()>();
        let (proc_tx, proc_rx) = mpsc::channel::<Proc>();
        m.spawn_fn("control", uid, None, true, move |p| {
            proc_tx.send(p.clone()).expect("hand proc to host");
            // Park until the session ends; the host drives this
            // process's system calls through the cloned handle. Poll
            // so a cluster-wide kill still terminates the session.
            loop {
                match quit_rx.recv_timeout(std::time::Duration::from_millis(20)) {
                    Ok(()) | Err(mpsc::RecvTimeoutError::Disconnected) => return Ok(()),
                    Err(mpsc::RecvTimeoutError::Timeout) => {
                        // A zero-length sleep notices a pending kill.
                        p.sleep_ms(0)?;
                    }
                }
            }
        });
        let proc = proc_rx.recv().expect("controller proc");
        let notifications: Arc<Mutex<VecDeque<Request>>> = Arc::new(Mutex::new(VecDeque::new()));

        // "A controller maintains an IPC socket for the purpose of
        // establishing connections for state change reports. It
        // listens to this socket to detect messages arriving from
        // meterdaemons." (§3.5.1)
        let ns = proc.socket(Domain::Inet, SockType::Stream)?;
        proc.bind(ns, BindTo::Port(control_port))?;
        proc.listen(ns, 32)?;
        let sink = notifications.clone();
        proc.fork_with(move |lp| loop {
            let (conn, _) = lp.accept(ns)?;
            while let Some(frame) = read_frame(&lp, conn)? {
                if let Ok(req) = Request::decode(&frame) {
                    sink.lock().push_back(req);
                }
            }
            lp.close(conn)?;
        })?;

        Ok(Controller {
            proc,
            cluster: cluster.clone(),
            machine: machine.to_owned(),
            control_port,
            jobs: HashMap::new(),
            job_order: Vec::new(),
            filters: Vec::new(),
            watches: HashMap::new(),
            next_filter_port: 4000,
            notifications,
            sinks: Vec::new(),
            transcript: String::new(),
            die_armed: false,
            quit_tx: Some(quit_tx),
            done: false,
            control_log: None,
            leases: HashMap::new(),
        })
    }

    /// The machine this controller runs on.
    pub fn machine(&self) -> &str {
        &self.machine
    }

    /// The full terminal transcript so far (prompts, commands,
    /// outputs, notifications).
    pub fn transcript(&self) -> &str {
        &self.transcript
    }

    /// Whether `die` has completed.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// The filters created so far.
    pub fn filters(&self) -> &[FilterInfo] {
        &self.filters
    }

    /// The current state of a job's processes, for assertions in
    /// tests and examples.
    pub fn job(&self, name: &str) -> Option<&Job> {
        self.jobs.get(name)
    }

    // ------------------------------------------------------------------
    // Output plumbing
    // ------------------------------------------------------------------

    fn emit(&mut self, text: &str) {
        if let Some(path) = self.sinks.last() {
            // "Sink provides a way for the output of commands to be
            // written to a file instead of to the terminal." (§4.3)
            let mut data = text.as_bytes().to_vec();
            data.push(b'\n');
            let path = path.clone();
            self.proc.machine().fs().append(&path, &data);
        } else {
            self.transcript.push_str(text);
            self.transcript.push('\n');
        }
    }

    // ------------------------------------------------------------------
    // Notifications
    // ------------------------------------------------------------------

    /// Drains pending daemon notifications into the transcript,
    /// updating process states. Returns the lines produced.
    pub fn pump(&mut self) -> Vec<String> {
        let pending: Vec<Request> = {
            let mut q = self.notifications.lock();
            q.drain(..).collect()
        };
        let mut lines = Vec::new();
        let mut events = Vec::new();
        for n in pending {
            match n {
                Request::StateChange { pid, state } => {
                    let mut hit = None;
                    for jname in &self.job_order {
                        if let Some(j) = self.jobs.get_mut(jname) {
                            if let Some(p) = j.procs.iter_mut().find(|p| p.pid == pid) {
                                if p.state == ProcState::Killed {
                                    // Already learned (a resync beat
                                    // the notification, or the daemon
                                    // retransmitted); don't re-announce.
                                    break;
                                }
                                if let Some(next) = p.state.next(ProcAction::Complete) {
                                    p.state = next;
                                } else {
                                    p.state = ProcState::Killed;
                                }
                                hit = Some((jname.clone(), p.name.clone()));
                                events.push(ControlEvent::ProcStateChanged {
                                    job: jname.clone(),
                                    machine: p.machine.clone(),
                                    pid: pid.0,
                                    state: p.state.to_string(),
                                });
                                break;
                            }
                        }
                    }
                    if let Some((job, name)) = hit {
                        let reason = if state == 0 { "normal" } else { "killed" };
                        lines.push(format!(
                            "DONE: process {name} in job '{job}' terminated: reason: {reason}"
                        ));
                    }
                }
                Request::IoData { pid, data } => {
                    let name = self
                        .job_order
                        .iter()
                        .filter_map(|j| self.jobs.get(j))
                        .flat_map(|j| j.procs.iter())
                        .find(|p| p.pid == pid)
                        .map(|p| p.name.clone())
                        .unwrap_or_else(|| pid.to_string());
                    let text = String::from_utf8_lossy(&data);
                    for l in text.lines() {
                        lines.push(format!("{name}> {l}"));
                    }
                }
                _ => {}
            }
        }
        for ev in events {
            self.record(ev);
        }
        for l in &lines {
            self.emit(l);
        }
        lines
    }

    /// Pumps notifications until every process of `job` has
    /// terminated (or is merely acquired), or `timeout_ms` of real
    /// time passes. Returns `true` when the job completed.
    ///
    /// Termination normally arrives as a daemon-initiated state-change
    /// message, but that message is lost if the daemon dies between a
    /// process's exit and the report. While waiting, the controller
    /// therefore periodically *resyncs*: it queries each non-terminal
    /// process's daemon directly and applies any terminal state it
    /// learns, so a job still converges after a daemon crash/restart.
    pub fn wait_job(&mut self, job: &str, timeout_ms: u64) -> bool {
        let deadline = std::time::Instant::now() + std::time::Duration::from_millis(timeout_ms);
        let mut ticks = 0u32;
        loop {
            self.pump();
            self.renew_lease_if_due(job);
            match self.jobs.get(job) {
                None => return false,
                Some(j) => {
                    if j.procs
                        .iter()
                        .all(|p| matches!(p.state, ProcState::Killed | ProcState::Acquired))
                    {
                        return true;
                    }
                }
            }
            if std::time::Instant::now() > deadline {
                return false;
            }
            ticks += 1;
            if ticks.is_multiple_of(50) {
                self.resync_job(job);
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
    }

    /// Queries the daemons for the current state of a job's
    /// non-terminal processes and applies what it learns, recovering
    /// terminations whose notification never arrived.
    fn resync_job(&mut self, job: &str) {
        let targets: Vec<(String, String, Pid)> = match self.jobs.get(job) {
            Some(j) => j
                .procs
                .iter()
                .filter(|p| !matches!(p.state, ProcState::Killed | ProcState::Acquired))
                .map(|p| (p.name.clone(), p.machine.clone(), p.pid))
                .collect(),
            None => return,
        };
        for (name, machine, pid) in targets {
            let reason = match self.rpc(&machine, &Request::QueryProc { pid }) {
                Ok(Reply::ProcStatus {
                    status: RpcStatus::Ok,
                    state: 0,
                }) => Some("normal"),
                Ok(Reply::ProcStatus {
                    status: RpcStatus::Ok,
                    state: 1,
                }) => Some("killed"),
                // The machine no longer knows the pid: the process
                // terminated and its zombie was already reaped.
                Ok(Reply::ProcStatus {
                    status: RpcStatus::Srch,
                    ..
                }) => Some("normal"),
                _ => None,
            };
            let Some(reason) = reason else { continue };
            let mut changed = None;
            if let Some(p) = self
                .jobs
                .get_mut(job)
                .and_then(|j| j.procs.iter_mut().find(|p| p.pid == pid))
            {
                p.state = p
                    .state
                    .next(ProcAction::Complete)
                    .unwrap_or(ProcState::Killed);
                changed = Some(p.state.to_string());
            }
            if let Some(state) = changed {
                self.record(ControlEvent::ProcStateChanged {
                    job: job.to_owned(),
                    machine: machine.clone(),
                    pid: pid.0,
                    state,
                });
            }
            self.emit(&format!(
                "DONE: process {name} in job '{job}' terminated: reason: {reason} (resync)"
            ));
        }
    }

    // ------------------------------------------------------------------
    // Command interpreter
    // ------------------------------------------------------------------

    /// Executes one command line, echoing it and its output into the
    /// transcript; returns the output lines (not including the echoed
    /// prompt).
    pub fn exec(&mut self, line: &str) -> String {
        self.exec_depth(line, 0)
    }

    fn exec_depth(&mut self, line: &str, depth: usize) -> String {
        self.pump();
        let echoed = format!("<Control> {line}");
        if self.sinks.is_empty() {
            self.transcript.push_str(&echoed);
            self.transcript.push('\n');
        }
        let before = self.out_marker();
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return String::new();
        }
        let mut parts = line.split_whitespace();
        let cmd = parts.next().expect("nonempty");
        let args: Vec<&str> = parts.collect();
        if cmd != "die" && cmd != "bye" && cmd != "exit" {
            self.die_armed = false;
        }
        match cmd {
            "help" => self.cmd_help(),
            "filter" => self.cmd_filter(&args),
            "newjob" => self.cmd_newjob(&args),
            "addprocess" | "add" => self.cmd_addprocess(&args),
            "acquire" => self.cmd_acquire(&args),
            "setflags" => self.cmd_setflags(&args),
            "startjob" => self.cmd_startstop(&args, true),
            "stopjob" => self.cmd_startstop(&args, false),
            "removejob" | "rmjob" => self.cmd_removejob(&args),
            "removeprocess" | "rmproc" => self.cmd_removeprocess(&args),
            "jobs" => self.cmd_jobs(&args),
            "getlog" => self.cmd_getlog(&args),
            "watch" => self.cmd_watch(&args),
            "tail" => self.cmd_tail(&args),
            "check" => self.cmd_check(&args),
            "stats" => self.cmd_stats(&args),
            "source" => self.cmd_source(&args, depth),
            "sink" => self.cmd_sink(&args),
            "input" => self.cmd_input(&args),
            "die" | "bye" | "exit" => self.cmd_die(),
            other => self.emit(&format!("unknown command '{other}'; try help")),
        }
        self.out_since(before)
    }

    fn out_marker(&self) -> usize {
        self.transcript.len()
    }

    fn out_since(&self, marker: usize) -> String {
        self.transcript[marker..].to_owned()
    }

    fn cmd_help(&mut self) {
        self.emit("Commands:");
        self.emit("  filter [<name> [<machine>] [key=value ...]]");
        self.emit("      keys: file=<filterfile> desc=<descriptions> templates=<templates>");
        self.emit("            shards=<n> log=text|store role=leaf|edge|aggregate");
        self.emit("            upstream=<filtername|host:port>   (required for role=edge)");
        self.emit(
            "      (positional <filterfile> <descriptions> <templates> <shards> is deprecated)",
        );
        self.emit("  newjob <jobname> [<filtername>]");
        self.emit("  addprocess <jobname> <machine> <processfile> [<parms ...>] [< <inputfile>]");
        self.emit("  acquire <jobname> <machine> <process identifier>");
        self.emit("  setflags <jobname> <flag1 flag2 ...>   (prefix - to reset)");
        self.emit("  startjob <jobname>      stopjob <jobname>");
        self.emit("  removejob <jobname>     removeprocess <jobname> <process>");
        self.emit("  jobs [<jobname1 jobname2 ...>]");
        self.emit("  getlog <filtername> <destination filename>");
        self.emit("  watch <filtername> [windows=<n>] [interval=<ms>] [anomalies]");
        self.emit("  tail <filtername> [n=<records>]");
        self.emit("  check <filtername> <mutex|byzantine>");
        self.emit("  stats [<component>]   (monitor self-telemetry; e.g. stats e2e)");
        self.emit("  source <filename>       sink [<filename>]");
        self.emit("  input <jobname> <process> <text>");
        self.emit("  die (aliases: exit, bye)");
        self.emit("Meter flags: fork termproc send receivecall receive socket");
        self.emit("             dup destsocket accept connect immediate all");
    }

    /// `filter` — create a filter process, or list filters (§4.3).
    ///
    /// Creation takes the keyword grammar
    /// `filter <name> [<machine>] [key=value ...]` with the keys
    /// `file= desc= templates= shards= log= role= upstream=`;
    /// `upstream=` accepts either the name of a filter created earlier
    /// in this session or a literal `host:port`. The pre-keyword
    /// positional form `filter <name> <machine> <filterfile>
    /// <descriptions> <templates> <shards>` is still accepted
    /// (deprecated).
    fn cmd_filter(&mut self, args: &[&str]) {
        if args.is_empty() {
            if self.filters.is_empty() {
                self.emit("no filters");
            }
            let lines: Vec<String> = self
                .filters
                .iter()
                .map(|f| {
                    let mode = match f.log_mode {
                        LogSinkMode::Text => String::new(),
                        LogSinkMode::Store => "  log=store".to_owned(),
                    };
                    let role = match f.role {
                        FilterRole::Leaf => String::new(),
                        r => format!("  role={r}"),
                    };
                    let up = if f.upstream.is_empty() {
                        String::new()
                    } else {
                        format!("  upstream={}", f.upstream)
                    };
                    format!(
                        "{}  pid {}  machine {}  port {}{}{}{}",
                        f.name, f.pid, f.machine, f.port, mode, role, up
                    )
                })
                .collect();
            for l in lines {
                self.emit(&l);
            }
            return;
        }
        let name = args[0].to_owned();
        if self.filters.iter().any(|f| f.name == name) {
            self.emit(&format!("filter '{name}' already exists"));
            return;
        }

        // Split what follows the name into positional tokens and
        // `key=value` pairs. The first positional is the machine; more
        // positionals mean the deprecated pre-keyword grammar.
        let mut positional: Vec<&str> = Vec::new();
        let mut keywords: Vec<(&str, &str)> = Vec::new();
        for a in &args[1..] {
            match a.split_once('=') {
                Some((k, v)) => keywords.push((k, v)),
                None => positional.push(a),
            }
        }
        let machine = positional
            .first()
            .map_or(self.machine.clone(), |s| (*s).to_owned());

        let mut filterfile = "/bin/filter".to_owned();
        let mut descriptions = "descriptions".to_owned();
        let mut templates = "templates".to_owned();
        let mut shards = 1u32;
        let mut log_mode = LogSinkMode::Text;
        let mut role = FilterRole::Leaf;
        let mut upstream = String::new();

        if positional.len() > 1 {
            // Deprecated positional layout after the machine:
            // <filterfile> <descriptions> <templates> <shards>. Only
            // `log=` may ride along as a keyword.
            if let Some((k, _)) = keywords.iter().find(|(k, _)| *k != "log") {
                self.emit(&format!(
                    "cannot mix positional arguments with key '{k}' (use keyword form: filter <name> [<machine>] key=value ...)"
                ));
                return;
            }
            filterfile = positional[1].to_owned();
            if let Some(d) = positional.get(2) {
                descriptions = (*d).to_owned();
            }
            if let Some(t) = positional.get(3) {
                templates = (*t).to_owned();
            }
            if let Some(s) = positional.get(4) {
                match s.parse::<u32>() {
                    Ok(n) if n >= 1 => shards = n,
                    _ => {
                        self.emit(&format!("bad shard count '{s}'"));
                        return;
                    }
                }
            }
            if let Some(extra) = positional.get(5) {
                self.emit(&format!("unexpected argument '{extra}'"));
                return;
            }
        }
        for (key, value) in keywords {
            match key {
                "file" => filterfile = value.to_owned(),
                "desc" | "descriptions" => descriptions = value.to_owned(),
                "templates" => templates = value.to_owned(),
                "shards" => match value.parse::<u32>() {
                    Ok(n) if n >= 1 => shards = n,
                    _ => {
                        self.emit(&format!(
                            "bad value '{value}' for key 'shards' (want a count >= 1)"
                        ));
                        return;
                    }
                },
                "log" | "mode" => match value {
                    "text" => log_mode = LogSinkMode::Text,
                    "store" => log_mode = LogSinkMode::Store,
                    other => {
                        self.emit(&format!(
                            "bad value '{other}' for key '{key}' (want text or store)"
                        ));
                        return;
                    }
                },
                "role" => match FilterRole::from_arg(value) {
                    Some(r) => role = r,
                    None => {
                        self.emit(&format!(
                            "bad value '{value}' for key 'role' (want leaf, edge, or aggregate)"
                        ));
                        return;
                    }
                },
                "upstream" => upstream = value.to_owned(),
                other => {
                    self.emit(&format!(
                        "unknown key '{other}' (valid keys: file, desc, templates, shards, log, role, upstream)"
                    ));
                    return;
                }
            }
        }
        // `upstream=` names either a filter from this session or a
        // literal host:port for parents the controller did not create.
        if !upstream.is_empty() && !upstream.contains(':') {
            match self.filters.iter().find(|f| f.name == upstream) {
                Some(parent) => upstream = format!("{}:{}", parent.machine, parent.port),
                None => {
                    self.emit(&format!(
                        "bad value '{upstream}' for key 'upstream' (no such filter; use a filter name or host:port)"
                    ));
                    return;
                }
            }
        }
        if !upstream.is_empty() && parse_host_port(&upstream).is_err() {
            self.emit(&format!(
                "bad value '{upstream}' for key 'upstream' (want host:port)"
            ));
            return;
        }
        if role == FilterRole::Edge && upstream.is_empty() {
            self.emit("role=edge requires key 'upstream' (a filter name or host:port)");
            return;
        }
        if self.cluster.machine(&machine).is_none() {
            self.emit(&format!("unknown machine '{machine}'"));
            return;
        }
        // Make sure the description/template files exist on the
        // filter's machine: copy the controller's local versions when
        // present, else install the standard ones.
        let local_fs = self.proc.machine().fs();
        let desc_data = local_fs
            .read(&descriptions)
            .unwrap_or_else(|| Descriptions::standard_text().as_bytes().to_vec());
        let tmpl_data = local_fs.read(&templates).unwrap_or_default();
        let desc_text = String::from_utf8_lossy(&desc_data).into_owned();
        let Ok(parsed_desc) = Descriptions::parse(&desc_text) else {
            self.emit(&format!("descriptions file '{descriptions}' is malformed"));
            return;
        };
        if Rules::parse(&String::from_utf8_lossy(&tmpl_data)).is_err() {
            self.emit(&format!("templates file '{templates}' is malformed"));
            return;
        }
        for (path, data) in [(&descriptions, desc_data), (&templates, tmpl_data)] {
            let r = self.rpc(
                &machine,
                &Request::WriteFile {
                    path: path.clone(),
                    data,
                },
            );
            if r.map(|r| r.status()) != Ok(RpcStatus::Ok) {
                self.emit(&format!("cannot install '{path}' on {machine}"));
                return;
            }
        }
        let port = self.next_filter_port;
        self.next_filter_port += 1;
        // Edges keep no log — everything they accept is forwarded
        // upstream, so they get no log path.
        let logfile = if role == FilterRole::Edge {
            String::new()
        } else {
            format!("/usr/tmp/log.{name}")
        };
        let mut builder = FilterSpec::builder(&filterfile, port)
            .descriptions(&descriptions)
            .templates(&templates)
            .shards(shards)
            .log_mode(log_mode)
            .role(role)
            .upstream(&upstream);
        if !logfile.is_empty() {
            builder = builder.logfile(&logfile);
        }
        let spec = match builder.build() {
            Ok(spec) => spec,
            Err(e) => {
                self.emit(&format!("bad filter spec: {e}"));
                return;
            }
        };
        let reply = self.rpc(&machine, &Request::CreateFilter { spec });
        match reply {
            Ok(Reply::Create {
                pid,
                status: RpcStatus::Ok,
            }) => {
                self.record(ControlEvent::FilterCreated {
                    name: name.clone(),
                    machine: machine.clone(),
                    pid: pid.0,
                    port,
                    logfile: logfile.clone(),
                    mode: match log_mode {
                        LogSinkMode::Text => "text".to_owned(),
                        LogSinkMode::Store => "store".to_owned(),
                    },
                    shards,
                    role: role.to_string(),
                    upstream: upstream.clone(),
                    desc_text,
                });
                self.filters.push(FilterInfo {
                    name: name.clone(),
                    machine,
                    pid,
                    port,
                    logfile,
                    log_mode,
                    shards,
                    role,
                    upstream,
                    desc: parsed_desc,
                });
                self.emit(&format!("filter '{name}' ... created: identifier= {pid}"));
            }
            Ok(r) => self.emit(&format!("filter creation failed: {}", r.status())),
            Err(e) => self.emit(&format!("filter creation failed: {e}")),
        }
    }

    /// `newjob <jobname> [<filtername>]` (§4.3).
    fn cmd_newjob(&mut self, args: &[&str]) {
        let Some(name) = args.first() else {
            self.emit("usage: newjob <jobname> [<filtername>]");
            return;
        };
        if self.jobs.contains_key(*name) {
            self.emit(&format!("job '{name}' already exists"));
            return;
        }
        // "A job cannot be created if a filter has not been created."
        let filter = match args.get(1) {
            Some(f) => {
                if !self.filters.iter().any(|x| x.name == **f) {
                    self.emit(&format!("no filter named '{f}'"));
                    return;
                }
                (*f).to_owned()
            }
            None => match self.filters.first() {
                Some(f) => f.name.clone(),
                None => {
                    self.emit("a job cannot be created before a filter exists");
                    return;
                }
            },
        };
        self.jobs
            .insert((*name).to_owned(), Job::new(*name, filter.clone()));
        self.job_order.push((*name).to_owned());
        self.record(ControlEvent::JobCreated {
            job: (*name).to_owned(),
            filter,
        });
        self.acquire_lease(name);
    }

    /// `addprocess <jobname> <machine> <processfile> [parms...]`
    /// (§4.3). Copies the executable to the target machine when it is
    /// only present locally (§3.5.3's `rcp`).
    fn cmd_addprocess(&mut self, args: &[&str]) {
        let (Some(job_name), Some(machine), Some(file)) = (args.first(), args.get(1), args.get(2))
        else {
            self.emit("usage: addprocess <jobname> <machine> <processfile> [<parms>]");
            return;
        };
        let job_name = (*job_name).to_owned();
        let machine = (*machine).to_owned();
        let file = (*file).to_owned();
        // `addprocess job machine file parms... < inputfile` redirects
        // the process's standard input from a file (§3.5.2).
        let rest: Vec<String> = args[3..].iter().map(|s| (*s).to_owned()).collect();
        let (params, stdin_file) = match rest.iter().position(|t| t == "<") {
            Some(pos) => {
                let Some(f) = rest.get(pos + 1) else {
                    self.emit("usage: addprocess ... < <inputfile>");
                    return;
                };
                (rest[..pos].to_vec(), Some(f.clone()))
            }
            None => (rest, None),
        };
        let Some(job) = self.jobs.get(&job_name) else {
            self.emit(&format!("no job named '{job_name}'"));
            return;
        };
        let (filter_host, filter_port, flags) = {
            let f = self
                .filters
                .iter()
                .find(|f| f.name == job.filter)
                .expect("job's filter exists");
            (f.machine.clone(), f.port, job.flags)
        };
        if self.cluster.machine(&machine).is_none() {
            self.emit(&format!("unknown machine '{machine}'"));
            return;
        }
        // rcp: probe each needed remote file; copy ours when missing
        // there (§3.5.3 for the binary, §3.5.2 for a redirected
        // standard-input file).
        let mut needed = vec![file.clone()];
        needed.extend(stdin_file.clone());
        for path in &needed {
            let remote_has = matches!(
                self.rpc(&machine, &Request::GetFile { path: path.clone() }),
                Ok(Reply::File {
                    status: RpcStatus::Ok,
                    ..
                })
            );
            if remote_has {
                continue;
            }
            match self.proc.machine().fs().read(path) {
                Some(data) => {
                    let r = self.rpc(
                        &machine,
                        &Request::WriteFile {
                            path: path.clone(),
                            data,
                        },
                    );
                    if r.map(|r| r.status()) != Ok(RpcStatus::Ok) {
                        self.emit(&format!("cannot copy '{path}' to {machine}"));
                        return;
                    }
                }
                None => {
                    self.emit(&format!("'{path}' not found locally or on {machine}"));
                    return;
                }
            }
        }
        let control_host = self.machine.clone();
        let control_port = self.control_port;
        let reply = self.rpc(
            &machine,
            &Request::Create {
                filename: file.clone(),
                params,
                filter_port,
                filter_host,
                meter_flags: flags,
                control_port,
                control_host,
                redirect_io: true,
                stdin_file,
            },
        );
        match reply {
            Ok(Reply::Create {
                pid,
                status: RpcStatus::Ok,
            }) => {
                let display = file.rsplit('/').next().unwrap_or(&file).to_owned();
                let job = self.jobs.get_mut(&job_name).expect("job exists");
                job.procs.push(ManagedProc {
                    name: display.clone(),
                    machine: machine.clone(),
                    pid,
                    state: ProcState::New,
                });
                self.record(ControlEvent::ProcAdded {
                    job: job_name.clone(),
                    name: display.clone(),
                    machine,
                    pid: pid.0,
                    state: ProcState::New.to_string(),
                });
                self.emit(&format!(
                    "process '{display}' ... created: identifier= {pid}"
                ));
            }
            Ok(r) => self.emit(&format!("process creation failed: {}", r.status())),
            Err(e) => self.emit(&format!("process creation failed: {e}")),
        }
    }

    /// `acquire <jobname> <machine> <pid>` (§4.3).
    fn cmd_acquire(&mut self, args: &[&str]) {
        let (Some(job_name), Some(machine), Some(pid)) = (args.first(), args.get(1), args.get(2))
        else {
            self.emit("usage: acquire <jobname> <machine> <process identifier>");
            return;
        };
        let Ok(pid_num) = pid.parse::<u32>() else {
            self.emit(&format!("bad process identifier '{pid}'"));
            return;
        };
        let job_name = (*job_name).to_owned();
        let machine = (*machine).to_owned();
        let Some(job) = self.jobs.get(&job_name) else {
            self.emit(&format!("no job named '{job_name}'"));
            return;
        };
        let (filter_host, filter_port, flags) = {
            let f = self
                .filters
                .iter()
                .find(|f| f.name == job.filter)
                .expect("job's filter exists");
            (f.machine.clone(), f.port, job.flags)
        };
        let control_host = self.machine.clone();
        let control_port = self.control_port;
        let reply = self.rpc(
            &machine,
            &Request::Acquire {
                pid: Pid(pid_num),
                filter_port,
                filter_host,
                meter_flags: flags,
                control_port,
                control_host,
            },
        );
        match reply {
            Ok(Reply::Create {
                pid,
                status: RpcStatus::Ok,
            }) => {
                let job = self.jobs.get_mut(&job_name).expect("job exists");
                job.procs.push(ManagedProc {
                    name: format!("pid{pid}"),
                    machine: machine.clone(),
                    pid,
                    state: ProcState::Acquired,
                });
                self.record(ControlEvent::ProcAdded {
                    job: job_name.clone(),
                    name: format!("pid{pid}"),
                    machine,
                    pid: pid.0,
                    state: ProcState::Acquired.to_string(),
                });
                self.emit(&format!("process {pid} ... acquired"));
            }
            Ok(r) => self.emit(&format!("acquire failed: {}", r.status())),
            Err(e) => self.emit(&format!("acquire failed: {e}")),
        }
    }

    /// `setflags <jobname> <flag1 flag2 ...>` (§4.3).
    fn cmd_setflags(&mut self, args: &[&str]) {
        let Some(job_name) = args.first() else {
            self.emit("usage: setflags <jobname> <flag1 flag2 ...>");
            return;
        };
        let job_name = (*job_name).to_owned();
        let Some(job) = self.jobs.get_mut(&job_name) else {
            self.emit(&format!("no job named '{job_name}'"));
            return;
        };
        let flags = match job.apply_flag_args(args[1..].iter().copied()) {
            Ok(f) => f,
            Err(tok) => {
                self.emit(&format!("unknown flag '{tok}'"));
                return;
            }
        };
        self.emit(&format!("new job flags = {flags}"));
        self.record(ControlEvent::FlagsSet {
            job: job_name.clone(),
            flags: flags.bits(),
        });
        let targets: Vec<(String, String, Pid, ProcState)> = self
            .jobs
            .get(&job_name)
            .expect("job exists")
            .procs
            .iter()
            .map(|p| (p.name.clone(), p.machine.clone(), p.pid, p.state))
            .collect();
        for (name, machine, pid, state) in targets {
            if state == ProcState::Killed {
                continue;
            }
            let r = self.rpc(&machine, &Request::SetFlags { pid, flags });
            match r {
                Ok(r) if r.status().is_ok() => {
                    self.emit(&format!("Process '{name}' : Flags set"));
                }
                _ => self.emit(&format!("Process '{name}' : setflags failed")),
            }
        }
    }

    /// `startjob` / `stopjob` (§4.3).
    fn cmd_startstop(&mut self, args: &[&str], start: bool) {
        let Some(job_name) = args.first() else {
            self.emit(if start {
                "usage: startjob <jobname>"
            } else {
                "usage: stopjob <jobname>"
            });
            return;
        };
        let job_name = (*job_name).to_owned();
        if !self.jobs.contains_key(&job_name) {
            self.emit(&format!("no job named '{job_name}'"));
            return;
        }
        let action = if start {
            ProcAction::Start
        } else {
            ProcAction::Stop
        };
        let targets: Vec<(String, String, Pid, ProcState)> = self.jobs[&job_name]
            .procs
            .iter()
            .map(|p| (p.name.clone(), p.machine.clone(), p.pid, p.state))
            .collect();
        for (name, machine, pid, state) in targets {
            match state.next(action) {
                Some(next) => {
                    let req = if start {
                        Request::Start { pid }
                    } else {
                        Request::Stop { pid }
                    };
                    let ok = self.rpc(&machine, &req).map(|r| r.status()) == Ok(RpcStatus::Ok);
                    if ok {
                        if let Some(p) = self
                            .jobs
                            .get_mut(&job_name)
                            .and_then(|j| j.proc_by_name(&name))
                        {
                            p.state = next;
                        }
                        self.record(ControlEvent::ProcStateChanged {
                            job: job_name.clone(),
                            machine: machine.clone(),
                            pid: pid.0,
                            state: next.to_string(),
                        });
                        self.emit(&format!(
                            "'{name}' {}.",
                            if start { "started" } else { "stopped" }
                        ));
                    } else {
                        self.emit(&format!("'{name}' : request failed"));
                    }
                }
                // "Processes that are running, killed, or acquired
                // cannot be started. The user is informed as to the
                // status of each process." / stopjob ignores killed
                // and acquired.
                None => self.emit(&format!(
                    "'{name}' cannot be {} ({state}).",
                    if start { "started" } else { "stopped" }
                )),
            }
        }
    }

    /// `removejob <jobname>` (§4.3).
    fn cmd_removejob(&mut self, args: &[&str]) {
        let Some(job_name) = args.first() else {
            self.emit("usage: removejob <jobname>");
            return;
        };
        let job_name = (*job_name).to_owned();
        let Some(job) = self.jobs.get(&job_name) else {
            self.emit(&format!("no job named '{job_name}'"));
            return;
        };
        if !job.removable() {
            self.emit(&format!(
                "job '{job_name}' has running or new processes; not removed"
            ));
            return;
        }
        let targets: Vec<(String, String, Pid, ProcState)> = job
            .procs
            .iter()
            .map(|p| (p.name.clone(), p.machine.clone(), p.pid, p.state))
            .collect();
        for (name, machine, pid, state) in targets {
            match state {
                ProcState::Stopped => {
                    let _ = self.rpc(&machine, &Request::Kill { pid });
                }
                ProcState::Acquired => {
                    // "The control program insures that the filter
                    // connection of that process is taken down … but
                    // the process continues to execute."
                    let _ = self.rpc(&machine, &Request::ClearMeter { pid });
                }
                _ => {}
            }
            self.emit(&format!("'{name}' removed"));
        }
        self.jobs.remove(&job_name);
        self.job_order.retain(|j| *j != job_name);
        self.record(ControlEvent::JobRemoved {
            job: job_name.clone(),
        });
        self.leases.remove(&job_name);
    }

    /// `removeprocess <jobname> <process>`.
    fn cmd_removeprocess(&mut self, args: &[&str]) {
        let (Some(job_name), Some(proc_name)) = (args.first(), args.get(1)) else {
            self.emit("usage: removeprocess <jobname> <process>");
            return;
        };
        let job_name = (*job_name).to_owned();
        let proc_name = (*proc_name).to_owned();
        let Some(job) = self.jobs.get_mut(&job_name) else {
            self.emit(&format!("no job named '{job_name}'"));
            return;
        };
        let Some(p) = job.proc_by_name(&proc_name) else {
            self.emit(&format!("no process '{proc_name}' in job '{job_name}'"));
            return;
        };
        let (machine, pid, state) = (p.machine.clone(), p.pid, p.state);
        match state {
            ProcState::Killed => {}
            ProcState::Stopped => {
                let _ = self.rpc(&machine, &Request::Kill { pid });
            }
            ProcState::Acquired => {
                let _ = self.rpc(&machine, &Request::ClearMeter { pid });
            }
            ProcState::New | ProcState::Running => {
                self.emit(&format!(
                    "'{proc_name}' is {state}; stop it before removing"
                ));
                return;
            }
        }
        let job = self.jobs.get_mut(&job_name).expect("job exists");
        if let Some(pos) = job.procs.iter().position(|p| p.name == proc_name) {
            job.procs.remove(pos);
        }
        self.emit(&format!("'{proc_name}' removed"));
    }

    /// `jobs [<names...>]` (§4.3).
    fn cmd_jobs(&mut self, args: &[&str]) {
        if args.is_empty() {
            let lines: Vec<String> = self
                .job_order
                .iter()
                .enumerate()
                .map(|(i, name)| {
                    let j = &self.jobs[name];
                    format!("{}  {}  filter={}", i + 1, name, j.filter)
                })
                .collect();
            if lines.is_empty() {
                self.emit("no jobs");
            }
            for l in lines {
                self.emit(&l);
            }
            return;
        }
        for name in args {
            let Some(j) = self.jobs.get(*name) else {
                self.emit(&format!("no job named '{name}'"));
                continue;
            };
            let lines: Vec<String> = j
                .procs
                .iter()
                .map(|p| {
                    format!(
                        "  {}  {}  {}  {}  flags: {}",
                        p.pid, p.state, p.name, p.machine, j.flags
                    )
                })
                .collect();
            self.emit(&format!("job '{name}':"));
            for l in lines {
                self.emit(&l);
            }
        }
    }

    /// `getlog <filtername> <destination>` (§4.3).
    ///
    /// For a `log=store` filter there is no single log file to fetch:
    /// the controller asks the filter's daemon to *list* the files
    /// under the store's directory prefix, pulls each `.seg` file it
    /// names, decodes the frames locally, and writes the same
    /// one-line-per-record text a text filter would have produced —
    /// `getlog` output is sink-agnostic. (Listing replaced the old
    /// dense-name probing, which silently stopped at the first gap a
    /// skipped or faulted segment left in the numbering.)
    fn cmd_getlog(&mut self, args: &[&str]) {
        let (Some(fname), Some(dest)) = (args.first(), args.get(1)) else {
            self.emit("usage: getlog <filtername> <destination filename>");
            return;
        };
        let Some(f) = self.filters.iter().find(|f| f.name == **fname).cloned() else {
            self.emit(&format!("no filter named '{fname}'"));
            return;
        };
        if f.role == FilterRole::Edge {
            self.emit(&format!(
                "filter '{fname}' is an edge pre-filter and keeps no log; getlog its upstream aggregate instead"
            ));
            return;
        }
        match f.log_mode {
            LogSinkMode::Text => match self.rpc(
                &f.machine,
                &Request::GetFile {
                    path: f.logfile.clone(),
                },
            ) {
                Ok(Reply::File {
                    status: RpcStatus::Ok,
                    data,
                }) => {
                    self.proc.machine().fs().write(dest, data);
                }
                _ => self.emit(&format!("cannot retrieve log of filter '{fname}'")),
            },
            LogSinkMode::Store => {
                let Some(segments) = self.fetch_segments(&f) else {
                    self.emit(&format!("cannot list segments of filter '{fname}'"));
                    return;
                };
                let reader = StoreReader::from_named_segment_bytes(segments);
                let mut text = String::new();
                for frame in reader.scan() {
                    if let Some(rec) = LogRecord::from_raw(&f.desc, frame.raw, &[]) {
                        text.push_str(&rec.to_string());
                        text.push('\n');
                    }
                }
                self.proc.machine().fs().write(dest, text.into_bytes());
            }
        }
    }

    /// `watch <filtername> [windows=<n>] [interval=<ms>] [anomalies]`
    /// — stream live windowed analysis of a running `log=store`
    /// filter: each window polls the filter's segment files through
    /// the tail cursors, feeds the new frames to the incremental trace
    /// engine, and prints one summary line (records, active processes,
    /// message-pairing lag). With `anomalies`, each window also prints
    /// the top-scoring process and the link the pairing lag
    /// concentrates on — the live localizer for partition-like faults.
    fn cmd_watch(&mut self, args: &[&str]) {
        let Some(fname) = args.first().map(|s| (*s).to_owned()) else {
            self.emit("usage: watch <filtername> [windows=<n>] [interval=<ms>] [anomalies]");
            return;
        };
        let (mut windows, mut interval_ms, mut anomalies) = (1usize, 300u64, false);
        for a in &args[1..] {
            if let Some(v) = a.strip_prefix("windows=") {
                match v.parse::<usize>() {
                    Ok(n) if n > 0 => windows = n,
                    _ => {
                        self.emit(&format!("bad windows count '{v}'"));
                        return;
                    }
                }
            } else if let Some(v) = a.strip_prefix("interval=") {
                match v.parse::<u64>() {
                    Ok(ms) => interval_ms = ms,
                    _ => {
                        self.emit(&format!("bad interval '{v}'"));
                        return;
                    }
                }
            } else if *a == "anomalies" {
                anomalies = true;
            } else {
                self.emit(&format!("unknown watch option '{a}'"));
                return;
            }
        }
        let Some(f) = self.watchable_filter(&fname) else {
            return;
        };
        for w in 0..windows {
            if w > 0 {
                std::thread::sleep(std::time::Duration::from_millis(interval_ms));
            }
            self.pump();
            let mut st = self.take_watch_state(&f);
            let frames = self.poll_filter_frames(&f, &mut st);
            st.watch.ingest_batch(frames);
            let snap = st.watch.close_window();
            self.emit(&format!("watch {fname} {}", snap.summary()));
            if anomalies {
                if let Some(top) = snap.anomalies.first() {
                    self.emit(&format!(
                        "watch {fname} anomaly: m{}:p{} score={:.2} (dev={:.2} lag={:.2})",
                        top.proc.machine, top.proc.pid, top.score, top.profile_dev, top.lag_share
                    ));
                }
                if let Some((a, b, n)) = snap.link_lag.first() {
                    self.emit(&format!("watch {fname} lag: link {a}<->{b} unmatched={n}"));
                }
            }
            st.last = Some(snap);
            self.watches.insert(fname.clone(), st);
        }
    }

    /// `tail <filtername> [n=<records>]` — poll once and print the
    /// most recent newly arrived records as decoded log text. Shares
    /// the watch cursors: frames shown here are also fed to the live
    /// trace, so mixing `tail` and `watch` never double-counts.
    fn cmd_tail(&mut self, args: &[&str]) {
        let Some(fname) = args.first().map(|s| (*s).to_owned()) else {
            self.emit("usage: tail <filtername> [n=<records>]");
            return;
        };
        let mut show = 10usize;
        for a in &args[1..] {
            if let Some(v) = a.strip_prefix("n=") {
                match v.parse::<usize>() {
                    Ok(n) => show = n,
                    _ => {
                        self.emit(&format!("bad record count '{v}'"));
                        return;
                    }
                }
            } else {
                self.emit(&format!("unknown tail option '{a}'"));
                return;
            }
        }
        let Some(f) = self.watchable_filter(&fname) else {
            return;
        };
        let mut st = self.take_watch_state(&f);
        let frames = self.poll_filter_frames(&f, &mut st);
        let new = frames.len();
        let lines: Vec<String> = frames
            .iter()
            .skip(new.saturating_sub(show))
            .filter_map(|fr| LogRecord::from_raw(&f.desc, &fr.raw, &[]))
            .map(|rec| rec.to_string())
            .collect();
        st.watch.ingest_batch(frames);
        self.emit(&format!("tail {fname}: {new} new record(s)"));
        for l in lines {
            self.emit(&format!("  {l}"));
        }
        self.watches.insert(fname, st);
    }

    /// Resolves a filter name for `watch`/`tail`: must exist, keep a
    /// log (not an edge), and log to a store.
    fn watchable_filter(&mut self, fname: &str) -> Option<FilterInfo> {
        let Some(f) = self.filters.iter().find(|f| f.name == fname).cloned() else {
            self.emit(&format!("no filter named '{fname}'"));
            return None;
        };
        if f.role == FilterRole::Edge {
            self.emit(&format!(
                "filter '{fname}' is an edge pre-filter and keeps no log; watch its upstream aggregate instead"
            ));
            return None;
        }
        if f.log_mode != LogSinkMode::Store {
            self.emit(&format!(
                "filter '{fname}' logs text; watch/tail need log=store"
            ));
            return None;
        }
        Some(f)
    }

    /// The watch state for a filter, creating it on first use. Taken
    /// out of the map for the duration of a poll (RPC needs `&self`).
    fn take_watch_state(&mut self, f: &FilterInfo) -> WatchState {
        self.watches.remove(&f.name).unwrap_or_else(|| WatchState {
            tail: StoreTail::default(),
            watch: LiveWatch::new(f.desc.clone()),
            consumed: HashSet::new(),
            seal_lines: 0,
            last: None,
        })
    }

    /// One live poll of a filter's store: echo new seal-manifest
    /// lines, list the segment files, advance the byte cursors over
    /// every not-yet-consumed one, and return the new frames in seq
    /// order. Sealed segments (a higher-numbered segment exists for
    /// their shard) are fetched one last time and then dropped from
    /// all future polls — only the in-progress segment per shard is
    /// re-fetched each round.
    fn poll_filter_frames(&mut self, f: &FilterInfo, st: &mut WatchState) -> Vec<OwnedFrame> {
        // Seal notifications, as appended by the filter's seal hook.
        if let Ok(Reply::File {
            status: RpcStatus::Ok,
            data,
        }) = self.rpc(
            &f.machine,
            &Request::GetFile {
                path: seals_name(&f.logfile),
            },
        ) {
            let text = String::from_utf8_lossy(&data);
            let lines: Vec<&str> = text.lines().collect();
            for l in lines.iter().skip(st.seal_lines) {
                self.emit(&format!("watch {}: {l}", f.name));
            }
            st.seal_lines = st.seal_lines.max(lines.len());
        }

        let names: Vec<String> = match self.rpc(
            &f.machine,
            &Request::ListFiles {
                prefix: format!("{}/", f.logfile),
            },
        ) {
            Ok(Reply::FileList {
                status: RpcStatus::Ok,
                names,
            }) => names.into_iter().filter(|n| n.ends_with(".seg")).collect(),
            _ => return Vec::new(),
        };
        let mut max_no: HashMap<u16, u32> = HashMap::new();
        for n in &names {
            if let Some((shard, no)) = seg_ids_of(n) {
                let e = max_no.entry(shard).or_insert(no);
                *e = (*e).max(no);
            }
        }
        let mut frames = Vec::new();
        for name in names {
            if st.consumed.contains(&name) {
                continue;
            }
            let Ok(Reply::File {
                status: RpcStatus::Ok,
                data,
            }) = self.rpc(&f.machine, &Request::GetFile { path: name.clone() })
            else {
                continue;
            };
            frames.extend(st.tail.offer_segment(&name, &data));
            let sealed = seg_ids_of(&name).is_some_and(|(shard, no)| no < max_no[&shard]);
            if sealed {
                // Fully read (a sealed segment's final flush preceded
                // its successor's creation): never fetch again.
                st.tail.consumed(&name);
                st.consumed.insert(name);
            }
        }
        frames.sort_by_key(|fr| fr.seq);
        frames
    }

    /// The most recently closed watch window of `filter`, if any —
    /// for tests and host-side tooling.
    pub fn last_window(&self, filter: &str) -> Option<&WindowSnapshot> {
        self.watches.get(filter).and_then(|st| st.last.as_ref())
    }

    /// Mutable access to a filter's live watch (trace engine plus
    /// scorer) — for tests and host-side tooling that want the full
    /// incremental analyses rather than the rendered lines.
    pub fn watch_live_mut(&mut self, filter: &str) -> Option<&mut LiveWatch> {
        self.watches.get_mut(filter).map(|st| &mut st.watch)
    }

    /// Fetches every store segment of a `log=store` filter over RPC,
    /// in segment order, keeping the segment names so the reader can
    /// classify sealed vs in-progress segments — the same listing
    /// facts the live tail uses. `None` if the listing fails.
    fn fetch_segments(&mut self, f: &FilterInfo) -> Option<Vec<(String, Vec<u8>)>> {
        let mut names: Vec<String> = match self.rpc(
            &f.machine,
            &Request::ListFiles {
                prefix: format!("{}/", f.logfile),
            },
        ) {
            Ok(Reply::FileList {
                status: RpcStatus::Ok,
                names,
            }) => names.into_iter().filter(|n| n.ends_with(".seg")).collect(),
            _ => return None,
        };
        names.sort();
        let mut segments = Vec::new();
        for path in names {
            if let Ok(Reply::File {
                status: RpcStatus::Ok,
                data,
            }) = self.rpc(&f.machine, &Request::GetFile { path: path.clone() })
            {
                segments.push((path, data));
            }
        }
        Some(segments)
    }

    /// Rebuilds a filter's log as an analysis trace, whichever sink
    /// mode it uses.
    fn filter_trace(&mut self, f: &FilterInfo) -> Option<Trace> {
        match f.log_mode {
            LogSinkMode::Text => match self.rpc(
                &f.machine,
                &Request::GetFile {
                    path: f.logfile.clone(),
                },
            ) {
                Ok(Reply::File {
                    status: RpcStatus::Ok,
                    data,
                }) => Some(Trace::parse(&String::from_utf8_lossy(&data))),
                _ => None,
            },
            LogSinkMode::Store => {
                let reader = StoreReader::from_named_segment_bytes(self.fetch_segments(f)?);
                Some(Trace::from_store(&reader, &f.desc))
            }
        }
    }

    /// `check <filtername> <mutex|byzantine>` — run a distributed-
    /// algorithm property checker over the filter's collected log.
    /// Everything it reports is computed from meter records alone.
    fn cmd_check(&mut self, args: &[&str]) {
        let (Some(fname), Some(which)) = (args.first(), args.get(1)) else {
            self.emit("usage: check <filtername> <mutex|byzantine>");
            return;
        };
        let Some(f) = self.filters.iter().find(|f| f.name == **fname).cloned() else {
            self.emit(&format!("no filter named '{fname}'"));
            return;
        };
        if f.role == FilterRole::Edge {
            self.emit(&format!(
                "filter '{fname}' is an edge pre-filter and keeps no log; check its upstream aggregate instead"
            ));
            return;
        }
        let Some(trace) = self.filter_trace(&f) else {
            self.emit(&format!("cannot retrieve log of filter '{fname}'"));
            return;
        };
        let report = match *which {
            "mutex" => MutexReport::check(&trace).to_string(),
            "byzantine" | "byz" => ByzReport::check(&trace).to_string(),
            other => {
                self.emit(&format!(
                    "unknown checker '{other}' (want mutex or byzantine)"
                ));
                return;
            }
        };
        for line in report.lines() {
            self.emit(line);
        }
    }

    /// `stats [<component>]` — the monitor's self-telemetry: per-stage
    /// counters, gauges, and latency histograms from every component
    /// in the simulation (meterdaemons, filters, the log store, the
    /// live engine), aggregated across machines by label. The optional
    /// component argument narrows the readout (`stats e2e` shows the
    /// end-to-end staleness chain).
    fn cmd_stats(&mut self, args: &[&str]) {
        let filter = args.first().copied();
        let text = dpm_telemetry::registry().snapshot().render_stats(filter);
        for line in text.lines() {
            self.emit(line);
        }
    }

    /// `source <filename>` (§4.3): run a command script, nesting up to
    /// sixteen deep.
    fn cmd_source(&mut self, args: &[&str], depth: usize) {
        let Some(path) = args.first() else {
            self.emit("usage: source <filename>");
            return;
        };
        if depth >= MAX_SOURCE_DEPTH {
            self.emit("source scripts nested too deeply");
            return;
        }
        let Some(text) = self.proc.machine().fs().read_string(path) else {
            self.emit(&format!("cannot read script '{path}'"));
            return;
        };
        for line in text.lines() {
            self.exec_depth(line, depth + 1);
        }
    }

    /// `sink [<filename>]` (§4.3).
    fn cmd_sink(&mut self, args: &[&str]) {
        match args.first() {
            Some(path) => self.sinks.push((*path).to_owned()),
            None => {
                self.sinks.pop();
            }
        }
    }

    /// `input <jobname> <process> <text>` — feed a process's
    /// redirected standard input through its daemon (§3.5.2).
    fn cmd_input(&mut self, args: &[&str]) {
        let (Some(job_name), Some(proc_name)) = (args.first(), args.get(1)) else {
            self.emit("usage: input <jobname> <process> <text>");
            return;
        };
        let text = args[2..].join(" ") + "\n";
        let target = self
            .jobs
            .get_mut(*job_name)
            .and_then(|j| j.proc_by_name(proc_name))
            .map(|p| (p.machine.clone(), p.pid));
        let Some((machine, pid)) = target else {
            self.emit("no such process");
            return;
        };
        let r = self.rpc(
            &machine,
            &Request::SendInput {
                pid,
                data: text.into_bytes(),
            },
        );
        if r.map(|r| r.status()) != Ok(RpcStatus::Ok) {
            self.emit("input failed");
        }
    }

    /// `die` (§4.3): refuse once while processes are active, then exit
    /// on an immediately repeated `die`.
    fn cmd_die(&mut self) {
        let active = self.jobs.values().any(Job::has_active);
        if active && !self.die_armed {
            self.die_armed = true;
            self.emit("there are still active processes; repeat die to exit anyway");
            return;
        }
        // "Upon exit, all executing filter processes are removed."
        let filters: Vec<FilterInfo> = self.filters.drain(..).collect();
        for f in filters {
            let _ = self.rpc(&f.machine, &Request::Kill { pid: f.pid });
        }
        if let Some(tx) = self.quit_tx.take() {
            let _ = tx.send(());
        }
        self.done = true;
    }

    // ------------------------------------------------------------------
    // Control-plane replication: durable state, leases, takeover
    // ------------------------------------------------------------------

    /// The identity this controller writes into lease records:
    /// `machine:control_port`. Two controllers on the same machine use
    /// distinct control ports, so the id is unique per controller.
    pub fn owner_id(&self) -> String {
        format!("{}:{}", self.machine, self.control_port)
    }

    /// Current simulated time in microseconds — the clock leases are
    /// granted and expire against.
    fn now_us(&self) -> u64 {
        self.cluster.global_time().now_us()
    }

    /// One lease period in simulated microseconds.
    fn lease_period_us(&self) -> u64 {
        DEFAULT_LEASE_MS * 1_000
    }

    /// Appends `ev` to the control log, when replication is enabled.
    fn record(&mut self, ev: ControlEvent) {
        if let Some(log) = self.control_log.as_mut() {
            log.append(&ev);
        }
    }

    /// Turns on control-plane replication: every subsequent mutation
    /// of controller state (jobs, filters, flags, process states,
    /// leases) is appended to the control log at `dir` on `backend`,
    /// from which any standby can reconstruct and adopt the session
    /// via [`Controller::adopt_from`]. Jobs created before this call
    /// are not retroactively logged — enable replication first.
    pub fn enable_control_log(&mut self, backend: Arc<dyn Backend>, dir: &str) {
        self.control_log = Some(ControlLog::open(backend, dir));
    }

    /// Whether control-plane replication is enabled.
    pub fn control_log_enabled(&self) -> bool {
        self.control_log.is_some()
    }

    /// Grants this controller a fresh lease on `job` through the
    /// control log.
    fn acquire_lease(&mut self, job: &str) {
        if self.control_log.is_none() {
            return;
        }
        let now = self.now_us();
        let expires = now + self.lease_period_us();
        self.record(ControlEvent::LeaseAcquired {
            job: job.to_owned(),
            owner: self.owner_id(),
            at_us: now,
            expires_us: expires,
        });
        self.leases.insert(job.to_owned(), expires);
    }

    /// Renews this controller's lease on `job` once less than half a
    /// lease period remains — frequent enough that a live owner never
    /// lapses, rare enough that the log is not dominated by renewals.
    fn renew_lease_if_due(&mut self, job: &str) {
        if self.control_log.is_none() {
            return;
        }
        let Some(&expires) = self.leases.get(job) else {
            return;
        };
        let now = self.now_us();
        if now + self.lease_period_us() / 2 < expires {
            return;
        }
        let new_expires = now + self.lease_period_us();
        self.record(ControlEvent::LeaseRenewed {
            job: job.to_owned(),
            owner: self.owner_id(),
            at_us: now,
            expires_us: new_expires,
        });
        self.leases.insert(job.to_owned(), new_expires);
        dpm_telemetry::registry()
            .counter("controlplane", "lease_renewals", "")
            .inc();
    }

    /// Adopts every live job found in the control log at `dir` on
    /// `backend`: the lease-based takeover path a standby controller
    /// runs when the owning controller dies.
    ///
    /// For each job whose lease is held by another controller, this
    /// waits (in simulated time) until that lease lapses — a live
    /// owner keeps renewing, so expiry only passes once the owner is
    /// really gone — then appends its own `LeaseAcquired`, rebuilds
    /// the job and filter tables from the log, and re-binds the
    /// surviving daemons' metered processes to this controller with
    /// one batched `AcquireMany` round-trip per machine. Processes the
    /// daemons no longer know are marked killed. Returns the adopted
    /// job names.
    pub fn adopt_from(&mut self, backend: Arc<dyn Backend>, dir: &str) -> Vec<String> {
        self.control_log = Some(ControlLog::open(backend, dir));
        let table = self.replayed_table();

        // Filters first: jobs reference them, and getlog/watch render
        // through their descriptions.
        for fr in &table.filters {
            if self.filters.iter().any(|f| f.name == fr.name) {
                continue;
            }
            let Ok(desc) = Descriptions::parse(&fr.desc_text) else {
                continue;
            };
            let Some(role) = FilterRole::from_arg(&fr.role) else {
                continue;
            };
            let log_mode = if fr.mode == "store" {
                LogSinkMode::Store
            } else {
                LogSinkMode::Text
            };
            self.filters.push(FilterInfo {
                name: fr.name.clone(),
                machine: fr.machine.clone(),
                pid: Pid(fr.pid),
                port: fr.port,
                logfile: fr.logfile.clone(),
                log_mode,
                shards: fr.shards,
                role,
                upstream: fr.upstream.clone(),
                desc,
            });
            self.next_filter_port = self.next_filter_port.max(fr.port + 1);
        }

        let mut adopted = Vec::new();
        let live: Vec<String> = table
            .live_jobs()
            .into_iter()
            .map(|j| j.name.clone())
            .collect();
        for job_name in live {
            let prev = self.wait_lease_lapse(&job_name);
            // Re-read: process exits recorded by the old owner just
            // before it died must not be lost.
            let Some(jr) = self.replayed_table().jobs.get(&job_name).cloned() else {
                continue;
            };
            if jr.removed {
                continue;
            }

            let now = self.now_us();
            if let Some(prev_expiry) = prev {
                dpm_telemetry::registry()
                    .histogram("controlplane", "takeover_latency_us", &job_name)
                    .record(now.saturating_sub(prev_expiry));
            }
            let expires = now + self.lease_period_us();
            self.record(ControlEvent::LeaseAcquired {
                job: job_name.clone(),
                owner: self.owner_id(),
                at_us: now,
                expires_us: expires,
            });
            self.leases.insert(job_name.clone(), expires);

            // Rebuild the in-memory job from the replayed record.
            let mut job = Job::new(&jr.name, jr.filter.clone());
            job.flags = MeterFlags::from_bits(jr.flags);
            let mut by_machine: HashMap<String, Vec<Pid>> = HashMap::new();
            for pr in &jr.procs {
                let state = parse_proc_state(&pr.state);
                job.procs.push(ManagedProc {
                    name: pr.name.clone(),
                    machine: pr.machine.clone(),
                    pid: Pid(pr.pid),
                    state,
                });
                if state != ProcState::Killed {
                    by_machine
                        .entry(pr.machine.clone())
                        .or_default()
                        .push(Pid(pr.pid));
                }
            }
            self.jobs.insert(job_name.clone(), job);
            if !self.job_order.contains(&job_name) {
                self.job_order.push(job_name.clone());
            }

            // Re-bind surviving daemons' notifications to this
            // controller: one batched round-trip per machine.
            let mut machines: Vec<(String, Vec<Pid>)> = by_machine.into_iter().collect();
            machines.sort();
            for (machine, pids) in machines {
                self.rebind_machine(&job_name, &machine, &pids);
            }
            self.emit(&format!(
                "job '{job_name}' adopted (owner now {})",
                self.owner_id()
            ));
            adopted.push(job_name);
        }
        adopted
    }

    /// Replays the control log into a fresh [`JobTable`].
    fn replayed_table(&self) -> JobTable {
        match self.control_log.as_ref() {
            Some(log) => JobTable::from_store(&log.reader()),
            None => JobTable::default(),
        }
    }

    /// Blocks (in simulated time) until `job`'s current lease has
    /// lapsed or is ours, re-reading the log so renewals appended
    /// while waiting are honored. Returns the expiry of the lease
    /// waited out, if there was a foreign one.
    fn wait_lease_lapse(&mut self, job: &str) -> Option<u64> {
        let me = self.owner_id();
        let mut waited: Option<u64> = None;
        loop {
            let lease = match self.replayed_table().jobs.get(job) {
                Some(jr) => jr.lease.clone(),
                None => return waited,
            };
            match lease {
                None => return waited,
                Some(l) if l.owner == me => return waited,
                Some(l) if l.expired(self.now_us()) => return Some(l.expires_us),
                Some(l) => {
                    waited = Some(l.expires_us);
                    // Sleeping advances simulated time, so a dead
                    // owner's lease lapses here; a live owner's
                    // renewals keep pushing the expiry out.
                    let _ = self.proc.sleep_ms(50);
                }
            }
        }
    }

    /// Re-points the daemon-side control bindings of `pids` on
    /// `machine` at this controller (one `AcquireMany{rebind_only}`
    /// round-trip), marking processes the daemon no longer knows as
    /// killed. Falls back to per-pid `QueryProc` resync against
    /// daemons that predate the batched message.
    fn rebind_machine(&mut self, job_name: &str, machine: &str, pids: &[Pid]) {
        let reply = self.rpc(
            machine,
            &Request::AcquireMany {
                pids: pids.to_vec(),
                filter_port: 0,
                filter_host: String::new(),
                meter_flags: MeterFlags::NONE,
                control_port: self.control_port,
                control_host: self.machine.clone(),
                rebind_only: true,
            },
        );
        let gone: Vec<Pid> = match reply {
            Ok(Reply::AcquireMany { results, .. }) => results
                .into_iter()
                .filter(|(_, st)| *st != RpcStatus::Ok)
                .map(|(pid, _)| pid)
                .collect(),
            // An old daemon cannot decode AcquireMany and answers a
            // plain failure Ack: fall back to per-pid resync. (Not
            // re-acquisition — the meter stream is still connected.)
            Ok(Reply::Ack {
                status: RpcStatus::Fail,
            }) => pids
                .iter()
                .filter(|pid| {
                    matches!(
                        self.rpc(machine, &Request::QueryProc { pid: **pid }),
                        Ok(Reply::ProcStatus {
                            status: RpcStatus::Srch,
                            ..
                        })
                    )
                })
                .copied()
                .collect(),
            _ => Vec::new(),
        };
        for pid in gone {
            let mut hit = None;
            if let Some(p) = self
                .jobs
                .get_mut(job_name)
                .and_then(|j| j.procs.iter_mut().find(|p| p.pid == pid))
            {
                if p.state != ProcState::Killed {
                    p.state = p
                        .state
                        .next(ProcAction::Complete)
                        .unwrap_or(ProcState::Killed);
                    hit = Some((p.name.clone(), p.state.to_string()));
                }
            }
            if let Some((name, state)) = hit {
                self.record(ControlEvent::ProcStateChanged {
                    job: job_name.to_owned(),
                    machine: machine.to_owned(),
                    pid: pid.0,
                    state,
                });
                self.emit(&format!(
                    "DONE: process {name} in job '{job_name}' terminated: reason: normal (resync)"
                ));
            }
        }
    }

    /// Batched `acquire`: meters already-running `pids` on `machine`
    /// into `job_name` with a single `AcquireMany` round-trip instead
    /// of one `Acquire` RPC per process. Falls back to per-pid
    /// `Acquire` when the daemon predates the batched message.
    /// Returns how many processes were acquired.
    pub fn acquire_many(&mut self, job_name: &str, machine: &str, pids: &[Pid]) -> usize {
        let Some(job) = self.jobs.get(job_name) else {
            self.emit(&format!("no job named '{job_name}'"));
            return 0;
        };
        let (filter_host, filter_port, flags) = {
            let f = self
                .filters
                .iter()
                .find(|f| f.name == job.filter)
                .expect("job's filter exists");
            (f.machine.clone(), f.port, job.flags)
        };
        let reply = self.rpc(
            machine,
            &Request::AcquireMany {
                pids: pids.to_vec(),
                filter_port,
                filter_host: filter_host.clone(),
                meter_flags: flags,
                control_port: self.control_port,
                control_host: self.machine.clone(),
                rebind_only: false,
            },
        );
        let results: Vec<(Pid, RpcStatus)> = match reply {
            Ok(Reply::AcquireMany {
                status: RpcStatus::Ok,
                results,
            }) => results,
            // An old daemon cannot decode AcquireMany and answers a
            // plain failure Ack: one classic Acquire per pid instead.
            Ok(Reply::Ack {
                status: RpcStatus::Fail,
            }) => pids
                .iter()
                .map(|&pid| {
                    let r = self.rpc(
                        machine,
                        &Request::Acquire {
                            pid,
                            filter_port,
                            filter_host: filter_host.clone(),
                            meter_flags: flags,
                            control_port: self.control_port,
                            control_host: self.machine.clone(),
                        },
                    );
                    let st = match r {
                        Ok(Reply::Create { status, .. }) => status,
                        Ok(r) => r.status(),
                        Err(_) => RpcStatus::Fail,
                    };
                    (pid, st)
                })
                .collect(),
            Ok(r) => {
                self.emit(&format!("acquire failed: {}", r.status()));
                return 0;
            }
            Err(e) => {
                self.emit(&format!("acquire failed: {e}"));
                return 0;
            }
        };
        let mut acquired = 0usize;
        let mut events = Vec::new();
        for (pid, st) in results {
            if st != RpcStatus::Ok {
                continue;
            }
            let job = self.jobs.get_mut(job_name).expect("job exists");
            job.procs.push(ManagedProc {
                name: format!("pid{pid}"),
                machine: machine.to_owned(),
                pid,
                state: ProcState::Acquired,
            });
            events.push(ControlEvent::ProcAdded {
                job: job_name.to_owned(),
                name: format!("pid{pid}"),
                machine: machine.to_owned(),
                pid: pid.0,
                state: ProcState::Acquired.to_string(),
            });
            acquired += 1;
        }
        for ev in events {
            self.record(ev);
        }
        self.emit(&format!("{acquired} of {} processes acquired", pids.len()));
        acquired
    }

    fn rpc(&self, machine: &str, req: &Request) -> Result<Reply, SysError> {
        // The hardened call: per-attempt timeout, bounded retries, and
        // an idempotency id the daemon dedups on — a retried create is
        // applied once even when the first reply was lost. Exhaustion
        // comes back in-band as Timeout/Unavailable, feeding the same
        // per-command error reporting as any other failure status.
        rpc_call_retry(
            &self.proc,
            machine,
            req,
            RPC_TIMEOUT_MS,
            Backoff::new(8, 5, 100),
        )
    }
}

/// Maps a control-log state keyword back to a [`ProcState`]. Unknown
/// keywords (from a future controller) conservatively parse as `New`.
fn parse_proc_state(s: &str) -> ProcState {
    match s {
        "acquired" => ProcState::Acquired,
        "running" => ProcState::Running,
        "stopped" => ProcState::Stopped,
        "killed" => ProcState::Killed,
        _ => ProcState::New,
    }
}
