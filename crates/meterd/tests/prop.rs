//! Property-based tests of the controller↔daemon protocol: arbitrary
//! well-formed messages round-trip; arbitrary bytes never panic the
//! decoders.

use dpm_meter::MeterFlags;
use dpm_meterd::{frame_len, Reply, Request, RpcStatus};
use dpm_simos::Pid;
use proptest::prelude::*;

fn arb_string() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9/._-]{0,40}"
}

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        (
            arb_string(),
            proptest::collection::vec(arb_string(), 0..5),
            any::<u16>(),
            arb_string(),
            any::<u32>(),
            any::<u16>(),
            arb_string(),
            any::<bool>(),
            proptest::option::of("[a-z/._-]{1,30}"),
        )
            .prop_map(
                |(
                    filename,
                    params,
                    filter_port,
                    filter_host,
                    flags,
                    control_port,
                    control_host,
                    redirect_io,
                    stdin_file,
                )| {
                    Request::Create {
                        filename,
                        params,
                        filter_port,
                        filter_host,
                        meter_flags: MeterFlags::from_bits(flags),
                        control_port,
                        control_host,
                        redirect_io,
                        stdin_file,
                    }
                }
            ),
        (
            arb_string(),
            any::<u16>(),
            arb_string(),
            arb_string(),
            arb_string(),
            1u32..16,
            any::<bool>(),
            0u32..3,
            arb_string(),
        )
            .prop_map(
                |(
                    filterfile,
                    port,
                    logfile,
                    descriptions,
                    templates,
                    shards,
                    store,
                    role,
                    upstream,
                )| {
                    // Direct struct construction on purpose: the wire
                    // codec must round-trip any field combination, not
                    // only the ones the builder's cross-field
                    // validation would allow.
                    Request::CreateFilter {
                        spec: dpm_meterd::FilterSpec {
                            filterfile,
                            port,
                            logfile,
                            descriptions,
                            templates,
                            shards,
                            log_mode: if store {
                                dpm_meterd::LogSinkMode::Store
                            } else {
                                dpm_meterd::LogSinkMode::Text
                            },
                            role: match role {
                                0 => dpm_filter::FilterRole::Leaf,
                                1 => dpm_filter::FilterRole::Edge,
                                _ => dpm_filter::FilterRole::Aggregate,
                            },
                            upstream,
                        },
                    }
                }
            ),
        (any::<u32>(), any::<u32>()).prop_map(|(p, f)| Request::SetFlags {
            pid: Pid(p),
            flags: MeterFlags::from_bits(f),
        }),
        any::<u32>().prop_map(|p| Request::Start { pid: Pid(p) }),
        any::<u32>().prop_map(|p| Request::Stop { pid: Pid(p) }),
        any::<u32>().prop_map(|p| Request::Kill { pid: Pid(p) }),
        arb_string().prop_map(|path| Request::GetFile { path }),
        any::<u32>().prop_map(|p| Request::ClearMeter { pid: Pid(p) }),
        (arb_string(), proptest::collection::vec(any::<u8>(), 0..200))
            .prop_map(|(path, data)| Request::WriteFile { path, data }),
        (any::<u32>(), proptest::collection::vec(any::<u8>(), 0..100))
            .prop_map(|(p, data)| Request::SendInput { pid: Pid(p), data }),
        (any::<u32>(), 0u32..3).prop_map(|(p, s)| Request::StateChange {
            pid: Pid(p),
            state: s,
        }),
        (any::<u32>(), proptest::collection::vec(any::<u8>(), 0..100))
            .prop_map(|(p, data)| Request::IoData { pid: Pid(p), data }),
    ]
}

fn arb_reply() -> impl Strategy<Value = Reply> {
    prop_oneof![
        (any::<u32>(), 0u32..8).prop_map(|(p, s)| Reply::Create {
            pid: Pid(p),
            status: RpcStatus::from(s),
        }),
        (0u32..8).prop_map(|s| Reply::Ack {
            status: RpcStatus::from(s)
        }),
        (0u32..8, proptest::collection::vec(any::<u8>(), 0..300)).prop_map(|(s, data)| {
            Reply::File {
                status: RpcStatus::from(s),
                data,
            }
        }),
    ]
}

proptest! {
    #[test]
    fn requests_round_trip(req in arb_request()) {
        let wire = req.encode();
        prop_assert_eq!(frame_len(&wire), Some(wire.len()));
        prop_assert_eq!(Request::decode(&wire).expect("decode"), req);
    }

    #[test]
    fn replies_round_trip(rep in arb_reply()) {
        let wire = rep.encode();
        prop_assert_eq!(frame_len(&wire), Some(wire.len()));
        prop_assert_eq!(Reply::decode(&wire).expect("decode"), rep);
    }

    #[test]
    fn decoders_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = Request::decode(&bytes);
        let _ = Reply::decode(&bytes);
        let _ = frame_len(&bytes);
    }

    #[test]
    fn truncation_is_an_error(req in arb_request(), cut in 1usize..8) {
        let wire = req.encode();
        let keep = wire.len().saturating_sub(cut);
        prop_assert!(Request::decode(&wire[..keep]).is_err());
    }
}
