//! Integration tests for the meterdaemon: the Fig. 3.5 scenario —
//! a controller on machine A drives processes on machine B through
//! the daemon's RPC protocol, and the daemon reports state changes
//! back on connections it initiates.

use dpm_filter::register_filter_program;
use dpm_meter::MeterFlags;
use dpm_meterd::{
    notify, read_frame, rpc_call, rpc_call_retry, start_meterdaemons, Reply, Request, RpcStatus,
    RPC_TIMEOUT_MS,
};
use dpm_simnet::NetConfig;
use dpm_simos::{Backoff, BindTo, Cluster, Domain, Pid, Proc, SockType, SysResult, Uid};
use parking_lot::Mutex;
use std::sync::Arc;

const CONTROL_PORT: u16 = 5001;

fn cluster() -> Arc<Cluster> {
    let c = Cluster::builder()
        .net(NetConfig::ideal())
        .seed(11)
        .machine("yellow") // controller
        .machine("red") // workers
        .machine("blue") // filter
        .build();
    register_filter_program(&c);
    start_meterdaemons(&c);
    c
}

/// Runs `body` as a host-driven "controller" process on yellow with a
/// notification listener socket already bound; notifications are
/// pushed into the returned queue by a forked helper.
fn with_controller<F>(c: &Arc<Cluster>, body: F) -> Arc<Mutex<Vec<Request>>>
where
    F: FnOnce(&Proc) -> SysResult<()> + Send + 'static,
{
    let notes: Arc<Mutex<Vec<Request>>> = Arc::new(Mutex::new(Vec::new()));
    let notes2 = notes.clone();
    let yellow = c.machine("yellow").unwrap();
    let pid = yellow.spawn_fn("controller", Uid(7), None, true, move |p| {
        let ns = p.socket(Domain::Inet, SockType::Stream)?;
        p.bind(ns, BindTo::Port(CONTROL_PORT))?;
        p.listen(ns, 16)?;
        let sink = notes2.clone();
        p.fork_with(move |lp| loop {
            let (conn, _) = lp.accept(ns)?;
            while let Some(frame) = read_frame(&lp, conn)? {
                if let Ok(req) = Request::decode(&frame) {
                    sink.lock().push(req);
                }
            }
            lp.close(conn)?;
        })?;
        body(&p)
    });
    yellow.wait_exit(pid);
    notes
}

fn create_req(filename: &str, params: Vec<String>, flags: MeterFlags, redirect: bool) -> Request {
    Request::Create {
        filename: filename.into(),
        params,
        filter_port: 4000,
        filter_host: "blue".into(),
        meter_flags: flags,
        control_port: CONTROL_PORT,
        control_host: "yellow".into(),
        redirect_io: redirect,
        stdin_file: None,
    }
}

fn start_filter(p: &Proc) -> SysResult<Pid> {
    let rep = rpc_call(
        p,
        "blue",
        &Request::CreateFilter {
            spec: dpm_meterd::FilterSpec::builder("/bin/filter", 4000)
                .logfile("/usr/tmp/log.f1")
                .build()
                .expect("valid spec"),
        },
    )?;
    match rep {
        Reply::Create {
            pid,
            status: RpcStatus::Ok,
        } => Ok(pid),
        other => panic!("filter creation failed: {other:?}"),
    }
}

#[test]
fn create_start_and_termination_notification() {
    let c = cluster();
    c.register_program("worker", |p, _args| {
        p.compute_ms(5)?;
        p.write(1, b"worker output\n")?;
        Ok(())
    });
    c.install_program_file("red", "/bin/worker", "worker");

    let notes = with_controller(&c, |p| {
        start_filter(p)?;
        // Create the worker on red — it comes back suspended.
        let rep = rpc_call(
            p,
            "red",
            &create_req("/bin/worker", vec![], MeterFlags::ALL, true),
        )?;
        let Reply::Create {
            pid,
            status: RpcStatus::Ok,
        } = rep
        else {
            panic!("create failed: {rep:?}");
        };
        // Start it; wait for the daemon's termination notice to land.
        let rep = rpc_call(p, "red", &Request::Start { pid })?;
        assert!(rep.status().is_ok());
        p.sleep_ms(200)?;
        // Real time for the notification to arrive.
        std::thread::sleep(std::time::Duration::from_millis(100));
        Ok(())
    });

    let notes = notes.lock();
    let term: Vec<&Request> = notes
        .iter()
        .filter(|r| matches!(r, Request::StateChange { state: 0, .. }))
        .collect();
    assert_eq!(
        term.len(),
        1,
        "exactly one normal-termination notice: {notes:?}"
    );
    let io: Vec<&Request> = notes
        .iter()
        .filter(|r| matches!(r, Request::IoData { .. }))
        .collect();
    assert_eq!(io.len(), 1, "redirected stdout was forwarded: {notes:?}");
    if let Request::IoData { data, .. } = io[0] {
        assert_eq!(data, b"worker output\n");
    }
    c.shutdown();
}

#[test]
fn create_failures_report_status() {
    let c = cluster();
    let _ = with_controller(&c, |p| {
        start_filter(p)?;
        // Missing file.
        let rep = rpc_call(
            p,
            "red",
            &create_req("/bin/missing", vec![], MeterFlags::NONE, false),
        )?;
        assert_eq!(rep.status(), RpcStatus::NoEnt);
        // Bad filter host/port: connection refused at create time.
        let rep = rpc_call(
            p,
            "red",
            &Request::Create {
                filename: "/etc/meterd".into(),
                params: vec![],
                filter_port: 9999,
                filter_host: "blue".into(),
                meter_flags: MeterFlags::ALL,
                control_port: CONTROL_PORT,
                control_host: "yellow".into(),
                redirect_io: false,
                stdin_file: None,
            },
        )?;
        assert_eq!(rep.status(), RpcStatus::Fail);
        // Unknown pid control.
        let rep = rpc_call(p, "red", &Request::Start { pid: Pid(424242) })?;
        assert_eq!(rep.status(), RpcStatus::Srch);
        Ok(())
    });
    c.shutdown();
}

#[test]
fn stop_resume_and_kill_through_the_daemon() {
    let c = cluster();
    c.register_program("spinner", |p, _| loop {
        p.compute_ms(1)?;
    });
    c.install_program_file("red", "/bin/spinner", "spinner");
    let red = c.machine("red").unwrap();
    let red2 = red.clone();

    let _ = with_controller(&c, move |p| {
        start_filter(p)?;
        let Reply::Create {
            pid,
            status: RpcStatus::Ok,
        } = rpc_call(
            p,
            "red",
            &create_req("/bin/spinner", vec![], MeterFlags::NONE, false),
        )?
        else {
            panic!("create failed")
        };
        assert_eq!(
            red2.proc_state(pid),
            Some(dpm_simos::RunState::Embryo),
            "created suspended"
        );
        assert!(rpc_call(p, "red", &Request::Start { pid })?
            .status()
            .is_ok());
        while red2.proc_cpu_us(pid).unwrap_or(0) == 0 {
            std::thread::yield_now();
        }
        assert!(rpc_call(p, "red", &Request::Stop { pid })?.status().is_ok());
        // Let it park.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(red2.proc_state(pid), Some(dpm_simos::RunState::Stopped));
        assert!(rpc_call(p, "red", &Request::Start { pid })?
            .status()
            .is_ok());
        assert!(rpc_call(p, "red", &Request::Kill { pid })?.status().is_ok());
        red2.wait_exit(pid);
        Ok(())
    });
    c.shutdown();
}

#[test]
fn write_and_get_file_round_trip() {
    let c = cluster();
    let _ = with_controller(&c, |p| {
        let rep = rpc_call(
            p,
            "red",
            &Request::WriteFile {
                path: "/tmp/hello".into(),
                data: b"payload".to_vec(),
            },
        )?;
        assert!(rep.status().is_ok());
        let rep = rpc_call(
            p,
            "red",
            &Request::GetFile {
                path: "/tmp/hello".into(),
            },
        )?;
        match rep {
            Reply::File {
                status: RpcStatus::Ok,
                data,
            } => assert_eq!(data, b"payload"),
            other => panic!("get file failed: {other:?}"),
        }
        let rep = rpc_call(
            p,
            "red",
            &Request::GetFile {
                path: "/nope".into(),
            },
        )?;
        assert_eq!(rep.status(), RpcStatus::NoEnt);
        Ok(())
    });
    c.shutdown();
}

#[test]
fn send_input_reaches_redirected_stdin() {
    let c = cluster();
    let echoed: Arc<Mutex<String>> = Arc::new(Mutex::new(String::new()));
    let sink = echoed.clone();
    c.register_program("reader", move |p, _| {
        let line = p.read_line(0)?;
        *sink.lock() = line.unwrap_or_default();
        Ok(())
    });
    c.install_program_file("red", "/bin/reader", "reader");

    let _ = with_controller(&c, |p| {
        start_filter(p)?;
        let Reply::Create {
            pid,
            status: RpcStatus::Ok,
        } = rpc_call(
            p,
            "red",
            &create_req("/bin/reader", vec![], MeterFlags::NONE, true),
        )?
        else {
            panic!("create failed")
        };
        assert!(rpc_call(p, "red", &Request::Start { pid })?
            .status()
            .is_ok());
        let rep = rpc_call(
            p,
            "red",
            &Request::SendInput {
                pid,
                data: b"typed line\n".to_vec(),
            },
        )?;
        assert!(rep.status().is_ok());
        std::thread::sleep(std::time::Duration::from_millis(50));
        Ok(())
    });
    assert_eq!(*echoed.lock(), "typed line");
    c.shutdown();
}

#[test]
fn retried_tagged_requests_are_applied_once() {
    let c = cluster();
    let _ = with_controller(&c, |p| {
        // A CreateFilter is the canonical non-idempotent request: run
        // twice it would spawn two filters (and the second would fail
        // to bind the port). Wrapped in the same request id, the
        // second call must replay the first reply verbatim.
        let req = Request::Tagged {
            req_id: 0xFEED_0001,
            inner: Box::new(Request::CreateFilter {
                spec: dpm_meterd::FilterSpec::builder("/bin/filter", 4000)
                    .logfile("/usr/tmp/log.f1")
                    .build()
                    .expect("valid spec"),
            }),
        };
        let first = rpc_call(p, "blue", &req)?;
        let Reply::Create {
            status: RpcStatus::Ok,
            ..
        } = first
        else {
            panic!("filter create failed: {first:?}");
        };
        let second = rpc_call(p, "blue", &req)?;
        assert_eq!(
            second, first,
            "duplicate id replays the cached reply instead of re-executing"
        );
        // A fresh id really executes — and fails, because the port is
        // now taken by the filter the first call spawned.
        let fresh = Request::Tagged {
            req_id: 0xFEED_0002,
            inner: match req {
                Request::Tagged { inner, .. } => inner,
                _ => unreachable!(),
            },
        };
        let third = rpc_call(p, "blue", &fresh)?;
        assert_ne!(third, first, "a new id is a new execution");
        Ok(())
    });
    c.shutdown();
}

#[test]
fn query_proc_reports_lifecycle_states() {
    let c = cluster();
    c.register_program("spinner", |p, _| loop {
        p.compute_ms(1)?;
    });
    c.install_program_file("red", "/bin/spinner", "spinner");
    let red = c.machine("red").unwrap();
    let red2 = red.clone();
    let _ = with_controller(&c, move |p| {
        start_filter(p)?;
        let Reply::Create {
            pid,
            status: RpcStatus::Ok,
        } = rpc_call(
            p,
            "red",
            &create_req("/bin/spinner", vec![], MeterFlags::NONE, false),
        )?
        else {
            panic!("create failed")
        };
        // Suspended-before-start and running both report "running".
        let rep = rpc_call(p, "red", &Request::QueryProc { pid })?;
        assert!(
            matches!(
                rep,
                Reply::ProcStatus {
                    status: RpcStatus::Ok,
                    state: 3
                }
            ),
            "{rep:?}"
        );
        assert!(rpc_call(p, "red", &Request::Start { pid })?
            .status()
            .is_ok());
        while red2.proc_cpu_us(pid).unwrap_or(0) == 0 {
            std::thread::yield_now();
        }
        assert!(rpc_call(p, "red", &Request::Stop { pid })?.status().is_ok());
        std::thread::sleep(std::time::Duration::from_millis(20));
        let rep = rpc_call(p, "red", &Request::QueryProc { pid })?;
        assert!(
            matches!(
                rep,
                Reply::ProcStatus {
                    status: RpcStatus::Ok,
                    state: 2
                }
            ),
            "stopped: {rep:?}"
        );
        let rep = rpc_call(p, "red", &Request::QueryProc { pid: Pid(424242) })?;
        assert!(
            matches!(
                rep,
                Reply::ProcStatus {
                    status: RpcStatus::Srch,
                    ..
                }
            ),
            "{rep:?}"
        );
        assert!(rpc_call(p, "red", &Request::Kill { pid })?.status().is_ok());
        red2.wait_exit(pid);
        Ok(())
    });
    c.shutdown();
}

#[test]
fn list_files_enumerates_by_prefix() {
    let c = cluster();
    let _ = with_controller(&c, |p| {
        for name in [
            "/usr/tmp/log-segments/s0-0.seg",
            "/usr/tmp/log-segments/s0-1.seg",
        ] {
            assert!(rpc_call(
                p,
                "red",
                &Request::WriteFile {
                    path: name.into(),
                    data: b"x".to_vec(),
                },
            )?
            .status()
            .is_ok());
        }
        let rep = rpc_call(
            p,
            "red",
            &Request::ListFiles {
                prefix: "/usr/tmp/log-segments/".into(),
            },
        )?;
        match rep {
            Reply::FileList {
                status: RpcStatus::Ok,
                names,
            } => assert_eq!(
                names,
                vec![
                    "/usr/tmp/log-segments/s0-0.seg".to_owned(),
                    "/usr/tmp/log-segments/s0-1.seg".to_owned(),
                ]
            ),
            other => panic!("list failed: {other:?}"),
        }
        let rep = rpc_call(
            p,
            "red",
            &Request::ListFiles {
                prefix: "/nowhere/".into(),
            },
        )?;
        assert_eq!(
            rep,
            Reply::FileList {
                status: RpcStatus::Ok,
                names: vec![]
            }
        );
        Ok(())
    });
    c.shutdown();
}

#[test]
fn rpc_call_retry_succeeds_and_reports_unavailable() {
    // A cluster with NO daemons: the hardened call must come back with
    // Unavailable in-band instead of erroring or spinning forever.
    let c = Cluster::builder()
        .net(NetConfig::ideal())
        .seed(12)
        .machine("yellow")
        .machine("red")
        .build();
    let yellow = c.machine("yellow").unwrap();
    let pid = yellow.spawn_fn("controller", Uid(7), None, true, |p| {
        let rep = rpc_call_retry(
            &p,
            "red",
            &Request::GetFile {
                path: "/etc/meterd".into(),
            },
            RPC_TIMEOUT_MS,
            Backoff::new(3, 2, 8),
        )?;
        assert_eq!(rep.status(), RpcStatus::Unavailable, "{rep:?}");
        Ok(())
    });
    yellow.wait_exit(pid);
    c.shutdown();

    // And against a live daemon it behaves exactly like rpc_call.
    let c = cluster();
    let _ = with_controller(&c, |p| {
        let rep = rpc_call_retry(
            p,
            "red",
            &Request::WriteFile {
                path: "/tmp/via-retry".into(),
                data: b"ok".to_vec(),
            },
            RPC_TIMEOUT_MS,
            Backoff::standard(),
        )?;
        assert!(rep.status().is_ok(), "{rep:?}");
        let rep = rpc_call(
            p,
            "red",
            &Request::GetFile {
                path: "/tmp/via-retry".into(),
            },
        )?;
        match rep {
            Reply::File {
                status: RpcStatus::Ok,
                data,
            } => assert_eq!(data, b"ok"),
            other => panic!("{other:?}"),
        }
        Ok(())
    });
    c.shutdown();
}

#[test]
fn one_way_notify_does_not_expect_reply() {
    let c = cluster();
    let _ = with_controller(&c, |p| {
        // Misusing notify against a daemon: the daemon just ignores
        // the one-way message and closes.
        notify(
            p,
            "red",
            dpm_meterd::METERD_PORT,
            &Request::StateChange {
                pid: Pid(1),
                state: 0,
            },
        )?;
        Ok(())
    });
    c.shutdown();
}
