//! The meterdaemon: remote process control for the measurement
//! system.
//!
//! Machine boundaries in 4.2BSD are not transparent — "direct control
//! of a process on another machine is impossible" (§3.5.1) — so a
//! *meterdaemon* runs on every machine and carries out control
//! functions for the controller over a typed request/reply protocol
//! (Fig. 3.6) on temporary stream connections. The daemon:
//!
//! * creates metered processes, suspended, wiring their meter
//!   connection to the filter and (optionally) their stdio through a
//!   gateway socket (§3.5.2);
//! * starts, stops, and kills processes; sets meter flags; acquires
//!   already-running processes;
//! * reports process terminations back to the controller, initiating
//!   the connection itself — the one exception to the RPC pattern;
//! * writes and fetches files, standing in for `rcp` (§3.5.3).

#![warn(missing_docs)]

pub mod daemon;
pub mod proto;

pub use daemon::{
    meterd_main, notify, read_exact, read_frame, rpc_call, rpc_call_retry, start_meterdaemons,
    METERD_PORT, METERD_PROGRAM, RPC_TIMEOUT_MS,
};
pub use proto::{
    frame_len, msg_type, FilterSpec, FilterSpecBuilder, LogSinkMode, ProtoError, Reply, Request,
    RpcStatus, FILTER_SPEC_VERSION,
};
