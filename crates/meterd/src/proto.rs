//! The controller ↔ meterdaemon communication protocol.
//!
//! "The cooperation between the controller and the meterdaemons
//! implies a need for a communication protocol. This protocol defines
//! the information to be exchanged, the synchronization of the
//! exchange, and the procedure for establishing communication
//! connections. … This format includes a message type and a message
//! body. The type field identifies the purpose of the message. … The
//! exchange is structured as a remote procedure call." (§3.5.1,
//! Fig. 3.6)
//!
//! Fig. 3.6 gives two concrete type numbers — `11: create request`
//! (filename, parameter count, parameter list, filter port, filter
//! host, meter flags, control port, control host) and `18: create
//! reply` (pid, status) — reproduced here verbatim; the remaining
//! numbers fill the obvious gaps.
//!
//! Wire form: `u32 total-length, u32 type, body`, strings as
//! `u32 length + bytes`, all little-endian (VAX order).

use dpm_filter::{FilterArgs, FilterRole};
use dpm_meter::MeterFlags;
use dpm_simos::Pid;
use std::fmt;

/// Message type numbers. `CREATE_REQUEST` and `CREATE_REPLY` are the
/// two the paper shows.
pub mod msg_type {
    /// Create a metered process (Fig. 3.6).
    pub const CREATE_REQUEST: u32 = 11;
    /// Create a filter process.
    pub const CREATE_FILTER: u32 = 12;
    /// Change a process's meter flags.
    pub const SET_FLAGS: u32 = 13;
    /// Start (or resume) a process.
    pub const START: u32 = 14;
    /// Stop a process.
    pub const STOP: u32 = 15;
    /// Kill a process.
    pub const KILL: u32 = 16;
    /// Acquire (begin metering) an already-running process.
    pub const ACQUIRE: u32 = 17;
    /// Reply to `CREATE_REQUEST`/`CREATE_FILTER` (Fig. 3.6).
    pub const CREATE_REPLY: u32 = 18;
    /// Fetch a file (a filter's log).
    pub const GET_FILE: u32 = 19;
    /// Stop metering a process (used when removing an acquired
    /// process: the filter connection is taken down but the process
    /// keeps running, §4.3 `removejob`).
    pub const CLEAR_METER: u32 = 20;
    /// Generic acknowledgement reply.
    pub const ACK: u32 = 21;
    /// Reply carrying file contents.
    pub const FILE_REPLY: u32 = 22;
    /// Daemon → controller: a process changed state (§3.5.1's one
    /// exception, where the daemon initiates the connection).
    pub const STATE_CHANGE: u32 = 23;
    /// Daemon → controller: bytes a process wrote to its redirected
    /// standard output (§3.5.2).
    pub const IO_DATA: u32 = 24;
    /// Write a file on the daemon's machine — the simulation's `rcp`
    /// (§3.5.3).
    pub const WRITE_FILE: u32 = 25;
    /// Feed bytes to a process's redirected standard input.
    pub const SEND_INPUT: u32 = 26;
    /// An idempotency wrapper: a request id plus a nested request.
    /// Retried calls reuse the id; the daemon replays the cached
    /// reply instead of re-executing.
    pub const TAGGED: u32 = 27;
    /// Query the state of a process (controller resync after a daemon
    /// restart).
    pub const QUERY_PROC: u32 = 28;
    /// Reply to `QUERY_PROC`.
    pub const PROC_STATUS: u32 = 29;
    /// List files under a prefix on the daemon's machine (segment
    /// enumeration for store-backed logs).
    pub const LIST_FILES: u32 = 30;
    /// Reply to `LIST_FILES`.
    pub const FILE_LIST: u32 = 31;
    /// Acquire a batch of already-running processes in one
    /// round-trip (controller takeover / acquire-at-scale).
    pub const ACQUIRE_MANY: u32 = 32;
    /// Reply to `ACQUIRE_MANY`: per-pid outcomes.
    pub const ACQUIRE_MANY_REPLY: u32 = 33;
}

/// Status code carried in replies. On the wire this is a bare `u32`
/// (0 is success, as tradition demands); in the API it is a typed
/// enum so callers match on `RpcStatus::Ok` instead of a magic `0`.
///
/// Unknown wire values decode to [`RpcStatus::Other`] instead of
/// failing, so a newer daemon can add codes without breaking an older
/// controller; `#[non_exhaustive]` keeps downstream matches honest
/// about that possibility.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RpcStatus {
    /// Operation succeeded (wire code 0).
    Ok,
    /// No such file (wire code 1).
    NoEnt,
    /// No such process (wire code 2).
    Srch,
    /// Permission denied (wire code 3).
    Perm,
    /// Anything else that went wrong (wire code 4).
    Fail,
    /// The caller gave up waiting for a reply (wire code 5). Produced
    /// locally by the RPC timeout path, never sent by a daemon.
    Timeout,
    /// The daemon could not be reached after retries (wire code 6).
    /// Produced locally by the RPC retry path.
    Unavailable,
    /// A wire code this build does not know about.
    Other(u32),
}

impl RpcStatus {
    /// Whether this is the success code.
    pub fn is_ok(self) -> bool {
        self == RpcStatus::Ok
    }

    /// The wire code.
    pub fn code(self) -> u32 {
        self.into()
    }
}

impl From<u32> for RpcStatus {
    fn from(code: u32) -> RpcStatus {
        match code {
            0 => RpcStatus::Ok,
            1 => RpcStatus::NoEnt,
            2 => RpcStatus::Srch,
            3 => RpcStatus::Perm,
            4 => RpcStatus::Fail,
            5 => RpcStatus::Timeout,
            6 => RpcStatus::Unavailable,
            other => RpcStatus::Other(other),
        }
    }
}

impl From<RpcStatus> for u32 {
    fn from(s: RpcStatus) -> u32 {
        match s {
            RpcStatus::Ok => 0,
            RpcStatus::NoEnt => 1,
            RpcStatus::Srch => 2,
            RpcStatus::Perm => 3,
            RpcStatus::Fail => 4,
            RpcStatus::Timeout => 5,
            RpcStatus::Unavailable => 6,
            RpcStatus::Other(code) => code,
        }
    }
}

impl fmt::Display for RpcStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RpcStatus::Ok => write!(f, "ok"),
            RpcStatus::NoEnt => write!(f, "no such file"),
            RpcStatus::Srch => write!(f, "no such process"),
            RpcStatus::Perm => write!(f, "permission denied"),
            RpcStatus::Fail => write!(f, "request failed"),
            RpcStatus::Timeout => write!(f, "request timed out"),
            RpcStatus::Unavailable => write!(f, "daemon unavailable"),
            RpcStatus::Other(code) => write!(f, "unknown status {code}"),
        }
    }
}

/// How a filter should record its accepted records — carried in
/// [`Request::CreateFilter`] and threaded down to the filter program.
///
/// On the wire this is a bare `u32` (0 = text, 1 = store); unknown
/// values are rejected at decode time since silently mis-choosing a
/// log format would corrupt a measurement session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LogSinkMode {
    /// The paper's §3.4 log: one rendered text line per record.
    #[default]
    Text,
    /// The binary log store: raw records in segment files under the
    /// logfile prefix (crate `dpm-logstore`).
    Store,
}

impl LogSinkMode {
    /// The wire code.
    pub fn code(self) -> u32 {
        match self {
            LogSinkMode::Text => 0,
            LogSinkMode::Store => 1,
        }
    }

    /// Decodes a wire code.
    fn from_code(code: u32) -> Result<LogSinkMode, ProtoError> {
        match code {
            0 => Ok(LogSinkMode::Text),
            1 => Ok(LogSinkMode::Store),
            other => Err(ProtoError::new(format!("unknown log sink mode {other}"))),
        }
    }

    /// The filter program's `logmode` argument string.
    pub fn as_arg(self) -> &'static str {
        match self {
            LogSinkMode::Text => "text",
            LogSinkMode::Store => "store",
        }
    }
}

impl fmt::Display for LogSinkMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_arg())
    }
}

/// [`FilterRole`]'s wire code (`0` = leaf keeps the pre-tree default).
fn role_code(role: FilterRole) -> u32 {
    match role {
        FilterRole::Leaf => 0,
        FilterRole::Edge => 1,
        FilterRole::Aggregate => 2,
    }
}

/// Decodes a [`FilterRole`] wire code; unknown values are rejected
/// like [`LogSinkMode`]'s — silently mis-placing a filter in the tree
/// would corrupt a measurement session.
fn role_from_code(code: u32) -> Result<FilterRole, ProtoError> {
    match code {
        0 => Ok(FilterRole::Leaf),
        1 => Ok(FilterRole::Edge),
        2 => Ok(FilterRole::Aggregate),
        other => Err(ProtoError::new(format!("unknown filter role {other}"))),
    }
}

/// Marks a [`FilterSpec`] body as versioned. The first `u32` of a
/// legacy (v0) `CreateFilter` body is the filterfile's string length,
/// which the frame-size cap bounds far below `u32::MAX` — so this
/// sentinel can never be mistaken for a v0 body, and a v0 body can
/// never be mistaken for a versioned one.
const SPEC_TAG: u32 = 0xFFFF_FFFF;

/// The current [`FilterSpec`] wire version.
pub const FILTER_SPEC_VERSION: u32 = 1;

/// Everything a meterdaemon needs to spawn a filter — the structured,
/// versioned replacement for `CreateFilter`'s seven positional wire
/// fields.
///
/// Construct specs with [`FilterSpec::builder`], which validates the
/// cross-field rules (an edge needs an upstream, a leaf/aggregate
/// needs a log, addresses must parse) before anything hits the wire.
///
/// On the wire the body is `SPEC_TAG, version, fields…`; decoding
/// rejects unknown versions, log-sink modes, and roles outright (like
/// [`LogSinkMode`] always has), while a body *without* the tag is
/// decoded as the legacy v0 positional layout — so a pre-upgrade
/// request replayed from a controller's retry buffer (or answered from
/// the daemon's reply cache) still works.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilterSpec {
    /// Executable file of the filter on the daemon's machine.
    pub filterfile: String,
    /// Port the filter will listen on for meter/record connections.
    pub port: u16,
    /// Log file path (text) or store prefix (store) on the filter's
    /// machine; empty for edges, which keep no log.
    pub logfile: String,
    /// Descriptions file path.
    pub descriptions: String,
    /// Templates (selection rules) file path.
    pub templates: String,
    /// How many selection shards the filter should run (≥ 1). One
    /// shard reproduces the classic single-engine filter.
    pub shards: u32,
    /// Where accepted records go: the text log or the binary store.
    pub log_mode: LogSinkMode,
    /// The filter's place in the tree.
    pub role: FilterRole,
    /// Upstream `host:port` (edges always, aggregates optionally);
    /// empty when there is no upstream.
    pub upstream: String,
}

impl FilterSpec {
    /// Starts building a spec for `filterfile` listening on `port`.
    #[must_use]
    pub fn builder(filterfile: impl Into<String>, port: u16) -> FilterSpecBuilder {
        FilterSpecBuilder {
            spec: FilterSpec {
                filterfile: filterfile.into(),
                port,
                logfile: String::new(),
                descriptions: "descriptions".to_owned(),
                templates: "templates".to_owned(),
                shards: 1,
                log_mode: LogSinkMode::Text,
                role: FilterRole::Leaf,
                upstream: String::new(),
            },
        }
    }

    /// The spec as the shared [`FilterArgs`] the filter program
    /// parses. Shard counts are clamped to ≥ 1 here because legacy v0
    /// bodies could carry 0.
    #[must_use]
    pub fn to_filter_args(&self) -> FilterArgs {
        FilterArgs {
            port: self.port,
            logfile: self.logfile.clone(),
            descriptions: self.descriptions.clone(),
            templates: self.templates.clone(),
            shards: self.shards.max(1),
            store_log: self.log_mode == LogSinkMode::Store,
            role: self.role,
            upstream: self.upstream.clone(),
        }
    }

    /// The argument vector the daemon passes when spawning the filter
    /// program.
    ///
    /// Plain leaf filters keep the pre-tree positional argv — §3.4
    /// lets users substitute their own filter program, and existing
    /// ones parse their arguments by position. Tree roles (and leaves
    /// with an upstream) get the keyword form, which only the shared
    /// [`FilterArgs`] parser understands.
    #[must_use]
    pub fn to_program_args(&self) -> Vec<String> {
        let fa = self.to_filter_args();
        if fa.role == FilterRole::Leaf && fa.upstream.is_empty() {
            return vec![
                fa.port.to_string(),
                fa.logfile.clone(),
                fa.descriptions.clone(),
                fa.templates.clone(),
                fa.shards.to_string(),
                if fa.store_log { "store" } else { "text" }.to_owned(),
            ];
        }
        fa.to_args()
    }

    /// The upstream address parsed, when one is set.
    #[must_use]
    pub fn upstream_addr(&self) -> Option<(String, u16)> {
        self.to_filter_args().upstream_addr()
    }

    fn encode_body(&self, w: &mut W) {
        w.u32(SPEC_TAG);
        w.u32(FILTER_SPEC_VERSION);
        w.str(&self.filterfile);
        w.u32(self.port as u32);
        w.str(&self.logfile);
        w.str(&self.descriptions);
        w.str(&self.templates);
        w.u32(self.shards);
        w.u32(self.log_mode.code());
        w.u32(role_code(self.role));
        w.str(&self.upstream);
    }

    fn decode_body(r: &mut R<'_>) -> Result<FilterSpec, ProtoError> {
        let probe = r.u32()?;
        if probe != SPEC_TAG {
            // Legacy v0: the probe was the filterfile's string length.
            r.pos -= 4;
            return Ok(FilterSpec {
                filterfile: r.str()?,
                port: r.u32()? as u16,
                logfile: r.str()?,
                descriptions: r.str()?,
                templates: r.str()?,
                shards: r.u32()?,
                log_mode: LogSinkMode::from_code(r.u32()?)?,
                role: FilterRole::Leaf,
                upstream: String::new(),
            });
        }
        let version = r.u32()?;
        if version != FILTER_SPEC_VERSION {
            return Err(ProtoError::new(format!(
                "unknown filter spec version {version}"
            )));
        }
        Ok(FilterSpec {
            filterfile: r.str()?,
            port: r.u32()? as u16,
            logfile: r.str()?,
            descriptions: r.str()?,
            templates: r.str()?,
            shards: r.u32()?,
            log_mode: LogSinkMode::from_code(r.u32()?)?,
            role: role_from_code(r.u32()?)?,
            upstream: r.str()?,
        })
    }
}

/// Builds a [`FilterSpec`], validating at [`FilterSpecBuilder::build`].
#[derive(Debug, Clone)]
pub struct FilterSpecBuilder {
    spec: FilterSpec,
}

impl FilterSpecBuilder {
    /// Log file path (text) or store prefix (store).
    #[must_use]
    pub fn logfile(mut self, path: impl Into<String>) -> Self {
        self.spec.logfile = path.into();
        self
    }

    /// Descriptions file path (default `descriptions`).
    #[must_use]
    pub fn descriptions(mut self, path: impl Into<String>) -> Self {
        self.spec.descriptions = path.into();
        self
    }

    /// Templates file path (default `templates`).
    #[must_use]
    pub fn templates(mut self, path: impl Into<String>) -> Self {
        self.spec.templates = path.into();
        self
    }

    /// Shard count (default 1).
    #[must_use]
    pub fn shards(mut self, n: u32) -> Self {
        self.spec.shards = n;
        self
    }

    /// Log sink mode (default text).
    #[must_use]
    pub fn log_mode(mut self, mode: LogSinkMode) -> Self {
        self.spec.log_mode = mode;
        self
    }

    /// Tree role (default leaf).
    #[must_use]
    pub fn role(mut self, role: FilterRole) -> Self {
        self.spec.role = role;
        self
    }

    /// Upstream `host:port`.
    #[must_use]
    pub fn upstream(mut self, addr: impl Into<String>) -> Self {
        self.spec.upstream = addr.into();
        self
    }

    /// Validates the cross-field rules and yields the spec.
    ///
    /// # Errors
    ///
    /// A [`ProtoError`] naming the missing/bad field: a zero port or
    /// shard count, an edge without an upstream, a leaf or aggregate
    /// without a log, or an unparseable upstream address.
    pub fn build(self) -> Result<FilterSpec, ProtoError> {
        if self.spec.shards == 0 {
            return Err(ProtoError::new("filter spec: shard count must be >= 1"));
        }
        self.spec
            .to_filter_args()
            .validate()
            .map_err(|e| ProtoError::new(format!("filter spec: {e}")))?;
        Ok(self.spec)
    }
}

/// A request sent from the controller to a meterdaemon (or, for the
/// last two variants, from a daemon to a controller).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// `11`: create a metered process, suspended.
    Create {
        /// Executable file on the daemon's machine.
        filename: String,
        /// Program parameters.
        params: Vec<String>,
        /// Filter's port for the meter connection.
        filter_port: u16,
        /// Filter's host (literal name, §3.5.4).
        filter_host: String,
        /// Initial meter flags.
        meter_flags: MeterFlags,
        /// Controller's notification port.
        control_port: u16,
        /// Controller's host.
        control_host: String,
        /// Whether to redirect the process's stdio through the daemon
        /// gateway (§3.5.2).
        redirect_io: bool,
        /// A file on the daemon's machine whose contents become the
        /// process's standard input, followed by end-of-file ("the
        /// file is copied to the machine on which the specified
        /// process is executing. The file is then opened by the
        /// meterdaemon, which redirects to it the standard input of
        /// the process", §3.5.2). Requires `redirect_io`.
        stdin_file: Option<String>,
    },
    /// `12`: create a filter process (runs immediately).
    CreateFilter {
        /// What to spawn, where it listens, where its records go, and
        /// its place in the filter tree — see [`FilterSpec`].
        spec: FilterSpec,
    },
    /// `13`: replace a process's meter flags.
    SetFlags {
        /// The process.
        pid: Pid,
        /// The new mask.
        flags: MeterFlags,
    },
    /// `14`: start or resume.
    Start {
        /// The process.
        pid: Pid,
    },
    /// `15`: stop.
    Stop {
        /// The process.
        pid: Pid,
    },
    /// `16`: kill.
    Kill {
        /// The process.
        pid: Pid,
    },
    /// `17`: meter an already-running process.
    Acquire {
        /// The process.
        pid: Pid,
        /// Filter's meter port.
        filter_port: u16,
        /// Filter's host.
        filter_host: String,
        /// Meter flags to set.
        meter_flags: MeterFlags,
        /// Controller notification port.
        control_port: u16,
        /// Controller host.
        control_host: String,
    },
    /// `32`: meter (or re-bind) a batch of already-running processes
    /// in one round-trip. With `rebind_only` false this is `Acquire`
    /// over each pid, but the daemon opens a *single* connection to
    /// the filter and shares it across the whole batch — the
    /// acquire-at-scale path. With `rebind_only` true the processes
    /// are already metered and only the daemon's notion of the owning
    /// controller changes — the takeover path, which must not disturb
    /// the live meter stream.
    AcquireMany {
        /// The processes.
        pids: Vec<Pid>,
        /// Filter's meter port (ignored when `rebind_only`).
        filter_port: u16,
        /// Filter's host (ignored when `rebind_only`).
        filter_host: String,
        /// Meter flags to set (ignored when `rebind_only`).
        meter_flags: MeterFlags,
        /// Controller notification port.
        control_port: u16,
        /// Controller host.
        control_host: String,
        /// True to only re-point state-change notifications at the
        /// new controller, leaving meter connections untouched.
        rebind_only: bool,
    },
    /// `19`: fetch a file from the daemon's machine.
    GetFile {
        /// Path on the daemon's machine.
        path: String,
    },
    /// `20`: take down a process's meter connection and flags.
    ClearMeter {
        /// The process.
        pid: Pid,
    },
    /// `25`: write a file on the daemon's machine (`rcp`).
    WriteFile {
        /// Destination path.
        path: String,
        /// File contents.
        data: Vec<u8>,
    },
    /// `26`: feed a process's redirected standard input.
    SendInput {
        /// The process.
        pid: Pid,
        /// The bytes.
        data: Vec<u8>,
    },
    /// `23` (daemon → controller): process state change.
    StateChange {
        /// The process.
        pid: Pid,
        /// 0 = terminated normally, 1 = killed, 2 = stopped.
        state: u32,
    },
    /// `24` (daemon → controller): redirected process output.
    IoData {
        /// The process.
        pid: Pid,
        /// What it wrote.
        data: Vec<u8>,
    },
    /// `27`: an idempotency wrapper around another request. The id is
    /// chosen by the caller and reused verbatim on every retry of the
    /// same logical call; the daemon caches the reply it sent for each
    /// id and replays it for duplicates, so a retried `CreateFilter`
    /// or `Start` is applied exactly once.
    Tagged {
        /// Caller-chosen request id, unique per logical call.
        req_id: u64,
        /// The wrapped request.
        inner: Box<Request>,
    },
    /// `28`: query a process's current state (controller resync after
    /// a daemon restart loses in-flight state-change notifications).
    QueryProc {
        /// The process.
        pid: Pid,
    },
    /// `30`: list files on the daemon's machine whose names start with
    /// a prefix — segment enumeration for store-backed filter logs.
    ListFiles {
        /// The name prefix.
        prefix: String,
    },
}

/// A reply to a [`Request`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// `18`: result of `Create`/`CreateFilter`/`Acquire`.
    Create {
        /// New (or acquired) process id; 0 on failure.
        pid: Pid,
        /// Outcome of the request.
        status: RpcStatus,
    },
    /// `21`: plain acknowledgement.
    Ack {
        /// Outcome of the request.
        status: RpcStatus,
    },
    /// `22`: file contents.
    File {
        /// Outcome of the request.
        status: RpcStatus,
        /// The bytes (empty on failure).
        data: Vec<u8>,
    },
    /// `29`: a process's current state, answering `QueryProc`.
    ProcStatus {
        /// Outcome of the query ([`RpcStatus::Srch`] if the daemon
        /// does not know the process).
        status: RpcStatus,
        /// Same codes as [`Request::StateChange`]: 0 = terminated
        /// normally, 1 = killed, 2 = stopped, 3 = running.
        state: u32,
    },
    /// `31`: file names, answering `ListFiles`.
    FileList {
        /// Outcome of the request.
        status: RpcStatus,
        /// Matching names, sorted (empty on failure).
        names: Vec<String>,
    },
    /// `33`: per-pid outcomes, answering `AcquireMany`.
    AcquireMany {
        /// Overall outcome: `Ok` when the daemon processed the batch
        /// (individual pids may still have failed), a failure code
        /// when it could not (e.g. the filter was unreachable).
        status: RpcStatus,
        /// One `(pid, outcome)` per requested pid, in request order.
        results: Vec<(Pid, RpcStatus)>,
    },
}

impl Reply {
    /// The reply's status code.
    pub fn status(&self) -> RpcStatus {
        match self {
            Reply::Create { status, .. }
            | Reply::Ack { status }
            | Reply::File { status, .. }
            | Reply::ProcStatus { status, .. }
            | Reply::FileList { status, .. }
            | Reply::AcquireMany { status, .. } => *status,
        }
    }
}

/// Error decoding a protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError {
    what: String,
}

impl ProtoError {
    fn new(what: impl Into<String>) -> ProtoError {
        ProtoError { what: what.into() }
    }
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "protocol error: {}", self.what)
    }
}

impl std::error::Error for ProtoError {}

// --- wire helpers -----------------------------------------------------

struct W(Vec<u8>);

impl W {
    fn new(ty: u32) -> W {
        let mut v = Vec::with_capacity(64);
        v.extend_from_slice(&0u32.to_le_bytes()); // length placeholder
        v.extend_from_slice(&ty.to_le_bytes());
        W(v)
    }
    fn u32(&mut self, v: u32) -> &mut W {
        self.0.extend_from_slice(&v.to_le_bytes());
        self
    }
    fn u64(&mut self, v: u64) -> &mut W {
        self.0.extend_from_slice(&v.to_le_bytes());
        self
    }
    fn str(&mut self, s: &str) -> &mut W {
        self.bytes(s.as_bytes())
    }
    fn bytes(&mut self, b: &[u8]) -> &mut W {
        self.u32(b.len() as u32);
        self.0.extend_from_slice(b);
        self
    }
    fn finish(mut self) -> Vec<u8> {
        let len = self.0.len() as u32;
        self.0[0..4].copy_from_slice(&len.to_le_bytes());
        self.0
    }
}

struct R<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> R<'a> {
    fn u32(&mut self) -> Result<u32, ProtoError> {
        let b = self
            .buf
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| ProtoError::new("truncated u32"))?;
        self.pos += 4;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
    fn u64(&mut self) -> Result<u64, ProtoError> {
        let b = self
            .buf
            .get(self.pos..self.pos + 8)
            .ok_or_else(|| ProtoError::new("truncated u64"))?;
        self.pos += 8;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
    fn bytes(&mut self) -> Result<Vec<u8>, ProtoError> {
        let len = self.u32()? as usize;
        let b = self
            .buf
            .get(self.pos..self.pos + len)
            .ok_or_else(|| ProtoError::new("truncated bytes"))?;
        self.pos += len;
        Ok(b.to_vec())
    }
    fn str(&mut self) -> Result<String, ProtoError> {
        String::from_utf8(self.bytes()?).map_err(|_| ProtoError::new("non-utf8 string"))
    }
}

impl Request {
    /// The message's type number.
    pub fn msg_type(&self) -> u32 {
        match self {
            Request::Create { .. } => msg_type::CREATE_REQUEST,
            Request::CreateFilter { .. } => msg_type::CREATE_FILTER,
            Request::SetFlags { .. } => msg_type::SET_FLAGS,
            Request::Start { .. } => msg_type::START,
            Request::Stop { .. } => msg_type::STOP,
            Request::Kill { .. } => msg_type::KILL,
            Request::Acquire { .. } => msg_type::ACQUIRE,
            Request::AcquireMany { .. } => msg_type::ACQUIRE_MANY,
            Request::GetFile { .. } => msg_type::GET_FILE,
            Request::ClearMeter { .. } => msg_type::CLEAR_METER,
            Request::WriteFile { .. } => msg_type::WRITE_FILE,
            Request::SendInput { .. } => msg_type::SEND_INPUT,
            Request::StateChange { .. } => msg_type::STATE_CHANGE,
            Request::IoData { .. } => msg_type::IO_DATA,
            Request::Tagged { .. } => msg_type::TAGGED,
            Request::QueryProc { .. } => msg_type::QUERY_PROC,
            Request::ListFiles { .. } => msg_type::LIST_FILES,
        }
    }

    /// Encodes to the wire form.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = W::new(self.msg_type());
        match self {
            Request::Create {
                filename,
                params,
                filter_port,
                filter_host,
                meter_flags,
                control_port,
                control_host,
                redirect_io,
                stdin_file,
            } => {
                w.str(filename);
                w.u32(params.len() as u32);
                for p in params {
                    w.str(p);
                }
                w.u32(*filter_port as u32);
                w.str(filter_host);
                w.u32(meter_flags.bits());
                w.u32(*control_port as u32);
                w.str(control_host);
                w.u32(*redirect_io as u32);
                w.str(stdin_file.as_deref().unwrap_or(""));
            }
            Request::CreateFilter { spec } => {
                spec.encode_body(&mut w);
            }
            Request::SetFlags { pid, flags } => {
                w.u32(pid.0);
                w.u32(flags.bits());
            }
            Request::Start { pid } | Request::Stop { pid } | Request::Kill { pid } => {
                w.u32(pid.0);
            }
            Request::Acquire {
                pid,
                filter_port,
                filter_host,
                meter_flags,
                control_port,
                control_host,
            } => {
                w.u32(pid.0);
                w.u32(*filter_port as u32);
                w.str(filter_host);
                w.u32(meter_flags.bits());
                w.u32(*control_port as u32);
                w.str(control_host);
            }
            Request::AcquireMany {
                pids,
                filter_port,
                filter_host,
                meter_flags,
                control_port,
                control_host,
                rebind_only,
            } => {
                w.u32(pids.len() as u32);
                for pid in pids {
                    w.u32(pid.0);
                }
                w.u32(*filter_port as u32);
                w.str(filter_host);
                w.u32(meter_flags.bits());
                w.u32(*control_port as u32);
                w.str(control_host);
                w.u32(*rebind_only as u32);
            }
            Request::GetFile { path } => {
                w.str(path);
            }
            Request::ClearMeter { pid } => {
                w.u32(pid.0);
            }
            Request::WriteFile { path, data } => {
                w.str(path);
                w.bytes(data);
            }
            Request::SendInput { pid, data } => {
                w.u32(pid.0);
                w.bytes(data);
            }
            Request::StateChange { pid, state } => {
                w.u32(pid.0);
                w.u32(*state);
            }
            Request::IoData { pid, data } => {
                w.u32(pid.0);
                w.bytes(data);
            }
            Request::Tagged { req_id, inner } => {
                w.u64(*req_id);
                w.bytes(&inner.encode());
            }
            Request::QueryProc { pid } => {
                w.u32(pid.0);
            }
            Request::ListFiles { prefix } => {
                w.str(prefix);
            }
        }
        w.finish()
    }

    /// Decodes a complete message (including its length prefix).
    ///
    /// # Errors
    ///
    /// [`ProtoError`] on truncation or an unknown type number.
    pub fn decode(buf: &[u8]) -> Result<Request, ProtoError> {
        let mut r = R { buf, pos: 0 };
        let _len = r.u32()?;
        let ty = r.u32()?;
        Ok(match ty {
            msg_type::CREATE_REQUEST => {
                let filename = r.str()?;
                let n = r.u32()? as usize;
                if n > 4096 {
                    return Err(ProtoError::new("absurd parameter count"));
                }
                let mut params = Vec::with_capacity(n);
                for _ in 0..n {
                    params.push(r.str()?);
                }
                Request::Create {
                    filename,
                    params,
                    filter_port: r.u32()? as u16,
                    filter_host: r.str()?,
                    meter_flags: MeterFlags::from_bits(r.u32()?),
                    control_port: r.u32()? as u16,
                    control_host: r.str()?,
                    redirect_io: r.u32()? != 0,
                    stdin_file: {
                        let s = r.str()?;
                        if s.is_empty() {
                            None
                        } else {
                            Some(s)
                        }
                    },
                }
            }
            msg_type::CREATE_FILTER => Request::CreateFilter {
                spec: FilterSpec::decode_body(&mut r)?,
            },
            msg_type::SET_FLAGS => Request::SetFlags {
                pid: Pid(r.u32()?),
                flags: MeterFlags::from_bits(r.u32()?),
            },
            msg_type::START => Request::Start { pid: Pid(r.u32()?) },
            msg_type::STOP => Request::Stop { pid: Pid(r.u32()?) },
            msg_type::KILL => Request::Kill { pid: Pid(r.u32()?) },
            msg_type::ACQUIRE => Request::Acquire {
                pid: Pid(r.u32()?),
                filter_port: r.u32()? as u16,
                filter_host: r.str()?,
                meter_flags: MeterFlags::from_bits(r.u32()?),
                control_port: r.u32()? as u16,
                control_host: r.str()?,
            },
            msg_type::ACQUIRE_MANY => {
                let n = r.u32()? as usize;
                if n > 65536 {
                    return Err(ProtoError::new("absurd pid count"));
                }
                let mut pids = Vec::with_capacity(n);
                for _ in 0..n {
                    pids.push(Pid(r.u32()?));
                }
                Request::AcquireMany {
                    pids,
                    filter_port: r.u32()? as u16,
                    filter_host: r.str()?,
                    meter_flags: MeterFlags::from_bits(r.u32()?),
                    control_port: r.u32()? as u16,
                    control_host: r.str()?,
                    rebind_only: r.u32()? != 0,
                }
            }
            msg_type::GET_FILE => Request::GetFile { path: r.str()? },
            msg_type::CLEAR_METER => Request::ClearMeter { pid: Pid(r.u32()?) },
            msg_type::WRITE_FILE => Request::WriteFile {
                path: r.str()?,
                data: r.bytes()?,
            },
            msg_type::SEND_INPUT => Request::SendInput {
                pid: Pid(r.u32()?),
                data: r.bytes()?,
            },
            msg_type::STATE_CHANGE => Request::StateChange {
                pid: Pid(r.u32()?),
                state: r.u32()?,
            },
            msg_type::IO_DATA => Request::IoData {
                pid: Pid(r.u32()?),
                data: r.bytes()?,
            },
            msg_type::TAGGED => {
                let req_id = r.u64()?;
                let inner = Request::decode(&r.bytes()?)?;
                if matches!(inner, Request::Tagged { .. }) {
                    return Err(ProtoError::new("nested tagged request"));
                }
                Request::Tagged {
                    req_id,
                    inner: Box::new(inner),
                }
            }
            msg_type::QUERY_PROC => Request::QueryProc { pid: Pid(r.u32()?) },
            msg_type::LIST_FILES => Request::ListFiles { prefix: r.str()? },
            other => return Err(ProtoError::new(format!("unknown request type {other}"))),
        })
    }
}

impl Reply {
    /// The message's type number.
    pub fn msg_type(&self) -> u32 {
        match self {
            Reply::Create { .. } => msg_type::CREATE_REPLY,
            Reply::Ack { .. } => msg_type::ACK,
            Reply::File { .. } => msg_type::FILE_REPLY,
            Reply::ProcStatus { .. } => msg_type::PROC_STATUS,
            Reply::FileList { .. } => msg_type::FILE_LIST,
            Reply::AcquireMany { .. } => msg_type::ACQUIRE_MANY_REPLY,
        }
    }

    /// Encodes to the wire form.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = W::new(self.msg_type());
        match self {
            Reply::Create { pid, status } => {
                w.u32(pid.0);
                w.u32(status.code());
            }
            Reply::Ack { status } => {
                w.u32(status.code());
            }
            Reply::File { status, data } => {
                w.u32(status.code());
                w.bytes(data);
            }
            Reply::ProcStatus { status, state } => {
                w.u32(status.code());
                w.u32(*state);
            }
            Reply::FileList { status, names } => {
                w.u32(status.code());
                w.u32(names.len() as u32);
                for n in names {
                    w.str(n);
                }
            }
            Reply::AcquireMany { status, results } => {
                w.u32(status.code());
                w.u32(results.len() as u32);
                for (pid, st) in results {
                    w.u32(pid.0);
                    w.u32(st.code());
                }
            }
        }
        w.finish()
    }

    /// Decodes a complete message.
    ///
    /// # Errors
    ///
    /// [`ProtoError`] on truncation or an unknown type number.
    pub fn decode(buf: &[u8]) -> Result<Reply, ProtoError> {
        let mut r = R { buf, pos: 0 };
        let _len = r.u32()?;
        let ty = r.u32()?;
        Ok(match ty {
            msg_type::CREATE_REPLY => Reply::Create {
                pid: Pid(r.u32()?),
                status: RpcStatus::from(r.u32()?),
            },
            msg_type::ACK => Reply::Ack {
                status: RpcStatus::from(r.u32()?),
            },
            msg_type::FILE_REPLY => Reply::File {
                status: RpcStatus::from(r.u32()?),
                data: r.bytes()?,
            },
            msg_type::PROC_STATUS => Reply::ProcStatus {
                status: RpcStatus::from(r.u32()?),
                state: r.u32()?,
            },
            msg_type::FILE_LIST => {
                let status = RpcStatus::from(r.u32()?);
                let n = r.u32()? as usize;
                if n > 65536 {
                    return Err(ProtoError::new("absurd file count"));
                }
                let mut names = Vec::with_capacity(n);
                for _ in 0..n {
                    names.push(r.str()?);
                }
                Reply::FileList { status, names }
            }
            msg_type::ACQUIRE_MANY_REPLY => {
                let status = RpcStatus::from(r.u32()?);
                let n = r.u32()? as usize;
                if n > 65536 {
                    return Err(ProtoError::new("absurd pid count"));
                }
                let mut results = Vec::with_capacity(n);
                for _ in 0..n {
                    results.push((Pid(r.u32()?), RpcStatus::from(r.u32()?)));
                }
                Reply::AcquireMany { status, results }
            }
            other => return Err(ProtoError::new(format!("unknown reply type {other}"))),
        })
    }
}

/// Reads the total length from a message's first four bytes, so stream
/// readers know how much to collect.
pub fn frame_len(prefix: &[u8]) -> Option<usize> {
    if prefix.len() < 4 {
        return None;
    }
    Some(u32::from_le_bytes([prefix[0], prefix[1], prefix[2], prefix[3]]) as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_request_matches_figure_3_6_shape() {
        // Fig. 3.6: type 11 with filename, parameter count, parameter
        // list, filter port, filter host, meter flags, control port,
        // control host.
        let req = Request::Create {
            filename: "/bin/A".into(),
            params: vec!["x".into(), "y".into()],
            filter_port: 4000,
            filter_host: "blue".into(),
            meter_flags: MeterFlags::SEND | MeterFlags::RECEIVE,
            control_port: 5000,
            control_host: "yellow".into(),
            redirect_io: true,
            stdin_file: Some("/tmp/in".into()),
        };
        let wire = req.encode();
        assert_eq!(frame_len(&wire), Some(wire.len()));
        let ty = u32::from_le_bytes([wire[4], wire[5], wire[6], wire[7]]);
        assert_eq!(ty, 11, "create request is type 11");
        assert_eq!(Request::decode(&wire).unwrap(), req);
    }

    #[test]
    fn create_reply_matches_figure_3_6_shape() {
        let rep = Reply::Create {
            pid: Pid(2120),
            status: RpcStatus::Ok,
        };
        let wire = rep.encode();
        let ty = u32::from_le_bytes([wire[4], wire[5], wire[6], wire[7]]);
        assert_eq!(ty, 18, "create reply is type 18");
        // Body: pid then status, directly after the 8-byte prefix.
        assert_eq!(
            u32::from_le_bytes([wire[8], wire[9], wire[10], wire[11]]),
            2120
        );
        assert_eq!(Reply::decode(&wire).unwrap(), rep);
    }

    #[test]
    fn every_request_round_trips() {
        let f = MeterFlags::ALL;
        let reqs = vec![
            Request::CreateFilter {
                spec: FilterSpec::builder("/bin/filter", 4001)
                    .logfile("/usr/tmp/f1")
                    .shards(4)
                    .build()
                    .unwrap(),
            },
            Request::CreateFilter {
                spec: FilterSpec::builder("/bin/filter", 4002)
                    .logfile("/usr/tmp/f2")
                    .shards(2)
                    .log_mode(LogSinkMode::Store)
                    .role(FilterRole::Aggregate)
                    .build()
                    .unwrap(),
            },
            Request::CreateFilter {
                spec: FilterSpec::builder("/bin/filter", 4003)
                    .role(FilterRole::Edge)
                    .upstream("blue:4002")
                    .build()
                    .unwrap(),
            },
            Request::SetFlags {
                pid: Pid(7),
                flags: f,
            },
            Request::Start { pid: Pid(7) },
            Request::Stop { pid: Pid(7) },
            Request::Kill { pid: Pid(7) },
            Request::Acquire {
                pid: Pid(9),
                filter_port: 1,
                filter_host: "h".into(),
                meter_flags: f,
                control_port: 2,
                control_host: "c".into(),
            },
            Request::AcquireMany {
                pids: vec![Pid(9), Pid(10), Pid(11)],
                filter_port: 1,
                filter_host: "h".into(),
                meter_flags: f,
                control_port: 2,
                control_host: "c".into(),
                rebind_only: false,
            },
            Request::AcquireMany {
                pids: vec![],
                filter_port: 0,
                filter_host: String::new(),
                meter_flags: MeterFlags::from_bits(0),
                control_port: 2,
                control_host: "c".into(),
                rebind_only: true,
            },
            Request::GetFile {
                path: "/usr/tmp/f1".into(),
            },
            Request::ClearMeter { pid: Pid(9) },
            Request::WriteFile {
                path: "/bin/A".into(),
                data: vec![1, 2, 3],
            },
            Request::SendInput {
                pid: Pid(9),
                data: b"hello\n".to_vec(),
            },
            Request::StateChange {
                pid: Pid(9),
                state: 0,
            },
            Request::IoData {
                pid: Pid(9),
                data: b"output".to_vec(),
            },
            Request::QueryProc { pid: Pid(2120) },
            Request::ListFiles {
                prefix: "/usr/tmp/f1-segments/".into(),
            },
            Request::Tagged {
                req_id: 0xDEAD_BEEF_0000_0001,
                inner: Box::new(Request::Start { pid: Pid(7) }),
            },
        ];
        for req in reqs {
            let wire = req.encode();
            assert_eq!(Request::decode(&wire).unwrap(), req, "{req:?}");
        }
    }

    #[test]
    fn every_reply_round_trips() {
        for rep in [
            Reply::Create {
                pid: Pid(1),
                status: RpcStatus::Ok,
            },
            Reply::Ack {
                status: RpcStatus::Perm,
            },
            Reply::File {
                status: RpcStatus::Ok,
                data: vec![9; 100],
            },
            Reply::Ack {
                status: RpcStatus::Other(77),
            },
            Reply::ProcStatus {
                status: RpcStatus::Ok,
                state: 3,
            },
            Reply::ProcStatus {
                status: RpcStatus::Srch,
                state: 0,
            },
            Reply::FileList {
                status: RpcStatus::Ok,
                names: vec!["a-0.seg".into(), "a-1.seg".into()],
            },
            Reply::FileList {
                status: RpcStatus::NoEnt,
                names: vec![],
            },
            Reply::AcquireMany {
                status: RpcStatus::Ok,
                results: vec![
                    (Pid(9), RpcStatus::Ok),
                    (Pid(10), RpcStatus::Srch),
                    (Pid(11), RpcStatus::Ok),
                ],
            },
            Reply::AcquireMany {
                status: RpcStatus::Unavailable,
                results: vec![],
            },
        ] {
            assert_eq!(Reply::decode(&rep.encode()).unwrap(), rep);
        }
    }

    #[test]
    fn acquire_many_rejects_garbage() {
        // An absurd pid count (a corrupted or hostile length prefix)
        // is named, not allocated.
        let req = Request::AcquireMany {
            pids: vec![Pid(1)],
            filter_port: 4000,
            filter_host: "green".into(),
            meter_flags: MeterFlags::ALL,
            control_port: 5000,
            control_host: "yellow".into(),
            rebind_only: false,
        };
        let mut wire = req.encode();
        wire[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = Request::decode(&wire).unwrap_err();
        assert!(err.to_string().contains("absurd pid count"), "{err}");
        // Truncated mid-batch.
        let wire = req.encode();
        assert!(Request::decode(&wire[..wire.len() - 2]).is_err());
        // The reply-side count is capped the same way.
        let rep = Reply::AcquireMany {
            status: RpcStatus::Ok,
            results: vec![(Pid(1), RpcStatus::Ok)],
        };
        let mut wire = rep.encode();
        wire[12..16].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = Reply::decode(&wire).unwrap_err();
        assert!(err.to_string().contains("absurd pid count"), "{err}");
    }

    #[test]
    fn tagged_requests_nest_and_reject_double_wrapping() {
        // A Tagged wrapper round-trips any plain request and keeps
        // the same id across re-encodes (the retry path depends on
        // byte-identical retransmissions).
        let inner = Request::CreateFilter {
            spec: FilterSpec::builder("/bin/filter", 4001)
                .logfile("/usr/tmp/f1")
                .log_mode(LogSinkMode::Store)
                .build()
                .unwrap(),
        };
        let tagged = Request::Tagged {
            req_id: 42,
            inner: Box::new(inner.clone()),
        };
        let wire = tagged.encode();
        assert_eq!(wire, tagged.encode(), "encoding is deterministic");
        let ty = u32::from_le_bytes([wire[4], wire[5], wire[6], wire[7]]);
        assert_eq!(ty, msg_type::TAGGED);
        match Request::decode(&wire).unwrap() {
            Request::Tagged { req_id, inner: got } => {
                assert_eq!(req_id, 42);
                assert_eq!(*got, inner);
            }
            other => panic!("decoded {other:?}"),
        }
        // Tagged-inside-Tagged is malformed, not silently unwrapped.
        let double = Request::Tagged {
            req_id: 1,
            inner: Box::new(tagged),
        };
        assert!(Request::decode(&double.encode())
            .unwrap_err()
            .to_string()
            .contains("nested tagged"));
    }

    #[test]
    fn retry_status_codes_round_trip_and_print() {
        // The retry/dedup additions: wire codes 5 and 6 are now typed
        // instead of falling into Other.
        assert_eq!(RpcStatus::from(5), RpcStatus::Timeout);
        assert_eq!(RpcStatus::from(6), RpcStatus::Unavailable);
        assert_eq!(RpcStatus::Timeout.code(), 5);
        assert_eq!(RpcStatus::Unavailable.code(), 6);
        assert!(!RpcStatus::Timeout.is_ok());
        assert!(!RpcStatus::Unavailable.is_ok());
        assert_eq!(RpcStatus::Timeout.to_string(), "request timed out");
        assert_eq!(RpcStatus::Unavailable.to_string(), "daemon unavailable");
        // They survive a trip through a reply frame too.
        for status in [RpcStatus::Timeout, RpcStatus::Unavailable] {
            let rep = Reply::Ack { status };
            assert_eq!(Reply::decode(&rep.encode()).unwrap().status(), status);
        }
    }

    #[test]
    fn rpc_status_round_trips_and_prints() {
        for code in 0..8u32 {
            assert_eq!(RpcStatus::from(code).code(), code);
        }
        assert!(RpcStatus::Ok.is_ok());
        assert!(!RpcStatus::Fail.is_ok());
        assert_eq!(RpcStatus::from(2), RpcStatus::Srch);
        assert_eq!(RpcStatus::from(9), RpcStatus::Other(9));
        assert_eq!(RpcStatus::NoEnt.to_string(), "no such file");
        assert_eq!(RpcStatus::Other(9).to_string(), "unknown status 9");
    }

    #[test]
    fn decode_errors_on_garbage() {
        assert!(Request::decode(&[1, 2]).is_err());
        let mut wire = Request::Start { pid: Pid(1) }.encode();
        wire[4..8].copy_from_slice(&999u32.to_le_bytes());
        assert!(Request::decode(&wire)
            .unwrap_err()
            .to_string()
            .contains("999"));
        let mut truncated = Request::GetFile { path: "abc".into() }.encode();
        truncated.truncate(10);
        assert!(Request::decode(&truncated).is_err());
        assert!(Reply::decode(&[0; 8]).is_err());
    }

    #[test]
    fn log_sink_mode_codes_and_args() {
        assert_eq!(LogSinkMode::Text.code(), 0);
        assert_eq!(LogSinkMode::Store.code(), 1);
        assert_eq!(LogSinkMode::from_code(0), Ok(LogSinkMode::Text));
        assert_eq!(LogSinkMode::from_code(1), Ok(LogSinkMode::Store));
        assert!(LogSinkMode::from_code(7).is_err());
        assert_eq!(LogSinkMode::default(), LogSinkMode::Text);
        assert_eq!(LogSinkMode::Store.as_arg(), "store");
        assert_eq!(LogSinkMode::Text.to_string(), "text");
        // A CreateFilter with a garbage mode is rejected, not guessed.
        // v1 body tail (empty upstream): …, mode, role, upstream-len.
        let mut wire = Request::CreateFilter {
            spec: FilterSpec::builder("f", 1)
                .logfile("l")
                .descriptions("d")
                .templates("t")
                .log_mode(LogSinkMode::Store)
                .build()
                .unwrap(),
        }
        .encode();
        let n = wire.len();
        wire[n - 12..n - 8].copy_from_slice(&9u32.to_le_bytes());
        assert!(Request::decode(&wire)
            .unwrap_err()
            .to_string()
            .contains("log sink mode"));
    }

    /// Encodes the pre-FilterSpec (v0) CreateFilter body: seven
    /// positional fields, no version tag — what an un-upgraded
    /// controller still sends.
    fn legacy_v0_create_filter_wire() -> Vec<u8> {
        let mut w = W::new(msg_type::CREATE_FILTER);
        w.str("/bin/filter");
        w.u32(4001);
        w.str("/usr/tmp/f1");
        w.str("descriptions");
        w.str("templates");
        w.u32(0); // v0 senders could say 0; the daemon clamped to 1
        w.u32(LogSinkMode::Store.code());
        w.finish()
    }

    #[test]
    fn legacy_v0_create_filter_still_decodes() {
        let wire = legacy_v0_create_filter_wire();
        match Request::decode(&wire).unwrap() {
            Request::CreateFilter { spec } => {
                assert_eq!(spec.filterfile, "/bin/filter");
                assert_eq!(spec.port, 4001);
                assert_eq!(spec.logfile, "/usr/tmp/f1");
                assert_eq!(spec.log_mode, LogSinkMode::Store);
                assert_eq!(spec.role, FilterRole::Leaf, "v0 is always a leaf");
                assert_eq!(spec.upstream, "");
                assert_eq!(spec.shards, 0);
                assert_eq!(
                    spec.to_filter_args().shards,
                    1,
                    "program args clamp the v0 zero"
                );
            }
            other => panic!("decoded {other:?}"),
        }
        // The same body wrapped in a Tagged retry decodes too — a
        // replayed pre-upgrade request must hit the reply cache, not a
        // decode error.
        let mut w = W::new(msg_type::TAGGED);
        w.u64(0xFEED_0042);
        w.bytes(&legacy_v0_create_filter_wire());
        let tagged = w.finish();
        match Request::decode(&tagged).unwrap() {
            Request::Tagged { req_id, inner } => {
                assert_eq!(req_id, 0xFEED_0042);
                assert!(matches!(*inner, Request::CreateFilter { .. }));
            }
            other => panic!("decoded {other:?}"),
        }
    }

    #[test]
    fn filter_spec_v1_round_trips_and_rejects_garbage() {
        let spec = FilterSpec::builder("/bin/filter", 4700)
            .logfile("/usr/tmp/log.root")
            .log_mode(LogSinkMode::Store)
            .role(FilterRole::Aggregate)
            .upstream("hub:4900")
            .shards(3)
            .build()
            .unwrap();
        let req = Request::CreateFilter { spec: spec.clone() };
        let wire = req.encode();
        assert_eq!(Request::decode(&wire).unwrap(), req);
        // Body layout: tag at 8..12, version at 12..16.
        assert_eq!(&wire[8..12], &SPEC_TAG.to_le_bytes());
        assert_eq!(&wire[12..16], &FILTER_SPEC_VERSION.to_le_bytes());

        // Unknown version: rejected with the version named.
        let mut bad = wire.clone();
        bad[12..16].copy_from_slice(&99u32.to_le_bytes());
        let err = Request::decode(&bad).unwrap_err().to_string();
        assert!(err.contains("unknown filter spec version 99"), "{err}");

        // Garbage role: rejected, not guessed. Tail (upstream
        // "hub:4900", 8 bytes): …, role, upstream-len, upstream.
        let n = wire.len();
        let mut bad = wire.clone();
        bad[n - 16..n - 12].copy_from_slice(&7u32.to_le_bytes());
        let err = Request::decode(&bad).unwrap_err().to_string();
        assert!(err.contains("unknown filter role 7"), "{err}");
    }

    #[test]
    fn filter_spec_builder_validates() {
        // An edge without an upstream is unusable.
        let err = FilterSpec::builder("/bin/filter", 4000)
            .role(FilterRole::Edge)
            .build()
            .unwrap_err()
            .to_string();
        assert!(err.contains("upstream"), "{err}");
        // A leaf (or aggregate) without a log has nowhere to write.
        let err = FilterSpec::builder("/bin/filter", 4000)
            .build()
            .unwrap_err()
            .to_string();
        assert!(err.contains("log"), "{err}");
        // Upstream addresses must parse as host:port.
        let err = FilterSpec::builder("/bin/filter", 4000)
            .role(FilterRole::Edge)
            .upstream("nocolon")
            .build()
            .unwrap_err()
            .to_string();
        assert!(err.contains("upstream"), "{err}");
        // Zero shards never made sense; the builder says so now.
        let err = FilterSpec::builder("/bin/filter", 4000)
            .logfile("l")
            .shards(0)
            .build()
            .unwrap_err()
            .to_string();
        assert!(err.contains("shard"), "{err}");
        // Edges legitimately have no log.
        let spec = FilterSpec::builder("/bin/filter", 4000)
            .role(FilterRole::Edge)
            .upstream("blue:4001")
            .build()
            .unwrap();
        assert_eq!(spec.upstream_addr(), Some(("blue".to_owned(), 4001)));
        assert!(spec.logfile.is_empty());
        // The program args honor the keyword grammar end to end.
        let args = spec.to_program_args();
        assert!(args.contains(&"role=edge".to_owned()), "{args:?}");
        assert!(args.contains(&"upstream=blue:4001".to_owned()), "{args:?}");
    }

    #[test]
    fn leaf_specs_spawn_with_the_positional_argv() {
        // User-written filters (§3.4) parse their argv by position, so
        // plain leaves must keep the pre-tree layout.
        let spec = FilterSpec::builder("/bin/filter", 4000)
            .logfile("/usr/tmp/log.f1")
            .build()
            .unwrap();
        let args = spec.to_program_args();
        assert_eq!(args[0], "4000");
        assert_eq!(args[1], "/usr/tmp/log.f1");
        assert!(
            args.iter().all(|a| !a.contains('=')),
            "leaf argv stays positional: {args:?}"
        );
    }

    #[test]
    fn frame_len_reads_prefix() {
        assert_eq!(frame_len(&[5, 0, 0, 0, 9]), Some(5));
        assert_eq!(frame_len(&[1, 2]), None);
    }
}
