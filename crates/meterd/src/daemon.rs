//! The meterdaemon.
//!
//! "To provide process control across machine boundaries, we use
//! daemon processes executing on each machine. … There must be a
//! meterdaemon on each machine that supports the measurement system.
//! The sole purpose of the meterdaemons is to carry out control
//! functions for the controller." (§3.5.1)
//!
//! The exchange is an RPC over a *temporary* stream connection: "the
//! stream connection between the controller and a meterdaemon exists
//! for the duration of a single exchange of messages" (§3.5.1). The
//! one exception is process-termination reporting, where the daemon
//! initiates the connection to the controller.

use crate::proto::{frame_len, Reply, Request, RpcStatus};
use dpm_filter::FilterRole;
use dpm_meter::{MeterFlags, SockName, TermReason};
use dpm_simos::{
    connect_backoff, Backoff, BindTo, Cluster, Domain, Fd, FlagSel, Pid, PidSel, Proc, RunState,
    Sig, SockSel, SockType, SysError, SysResult, Uid,
};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The well-known port every meterdaemon listens on.
pub const METERD_PORT: u16 = 571;

/// The program-registry name of the meterdaemon.
pub const METERD_PROGRAM: &str = "meterd";

/// Reads exactly `n` bytes from a stream descriptor; `None` at EOF.
///
/// # Errors
///
/// Propagates any read error.
pub fn read_exact(p: &Proc, fd: Fd, n: usize) -> SysResult<Option<Vec<u8>>> {
    let mut buf = Vec::with_capacity(n);
    while buf.len() < n {
        let chunk = p.read(fd, n - buf.len())?;
        if chunk.is_empty() {
            return Ok(None);
        }
        buf.extend_from_slice(&chunk);
    }
    Ok(Some(buf))
}

/// Reads one length-prefixed protocol frame; `None` at EOF.
///
/// # Errors
///
/// `EINVAL` on a malformed length; read errors propagate.
pub fn read_frame(p: &Proc, fd: Fd) -> SysResult<Option<Vec<u8>>> {
    let Some(prefix) = read_exact(p, fd, 4)? else {
        return Ok(None);
    };
    let total = frame_len(&prefix).ok_or(SysError::Einval)?;
    if !(8..=16 * 1024 * 1024).contains(&total) {
        return Err(SysError::Einval);
    }
    let Some(rest) = read_exact(p, fd, total - 4)? else {
        return Ok(None);
    };
    let mut out = prefix;
    out.extend_from_slice(&rest);
    Ok(Some(out))
}

/// Performs one controller-side RPC: temporary connection, one
/// request, one reply, close (§3.5.1).
///
/// This is the raw single-attempt exchange with no timeout; callers
/// that must survive a lossy network or a restarting daemon should use
/// [`rpc_call_retry`] instead.
///
/// # Errors
///
/// Connection errors propagate; a garbled reply is `EINVAL`.
pub fn rpc_call(p: &Proc, host: &str, req: &Request) -> SysResult<Reply> {
    let s = p.socket(Domain::Inet, SockType::Stream)?;
    let result = (|| {
        p.connect_host(s, host, METERD_PORT)?;
        p.write(s, &req.encode())?;
        let frame = read_frame(p, s)?.ok_or(SysError::Epipe)?;
        Reply::decode(&frame).map_err(|_| SysError::Einval)
    })();
    let _ = p.close(s);
    result
}

/// Default per-attempt reply timeout for [`rpc_call_retry`], in
/// virtual milliseconds. Generous next to the simulated WAN latencies
/// (tens of milliseconds) yet short enough that a partitioned daemon
/// is retried, not waited on forever.
pub const RPC_TIMEOUT_MS: u64 = 400;

/// Source of idempotency keys for [`rpc_call_retry`]. Uniqueness is
/// all that matters — the daemon's dedup cache keys on the id, and the
/// fault schedule never looks at it.
static NEXT_REQ_ID: AtomicU64 = AtomicU64::new(1);

/// What one RPC attempt came back with.
enum Attempt {
    Got(Reply),
    /// Could not connect, or the connection died before a full reply.
    Unreachable,
    /// Connected and sent, but no reply within the timeout.
    TimedOut,
}

/// Reads one protocol frame, giving up after `timeout_ms` of virtual
/// time. Polls non-blockingly, advancing the virtual clock between
/// polls (the same discipline as the workloads' `read_timeout`).
fn read_frame_deadline(p: &Proc, fd: Fd, timeout_ms: u64) -> SysResult<Attempt> {
    let mut buf: Vec<u8> = Vec::new();
    let mut waited = 0u64;
    loop {
        let want = match frame_len(&buf) {
            Some(total) => {
                if !(8..=16 * 1024 * 1024).contains(&total) {
                    return Ok(Attempt::Unreachable);
                }
                if buf.len() >= total {
                    match Reply::decode(&buf) {
                        Ok(reply) => return Ok(Attempt::Got(reply)),
                        Err(_) => return Ok(Attempt::Unreachable),
                    }
                }
                total - buf.len()
            }
            None => 4 - buf.len(),
        };
        match p.read_nb(fd, want)? {
            Some(chunk) if chunk.is_empty() => return Ok(Attempt::Unreachable), // EOF
            Some(chunk) => buf.extend_from_slice(&chunk),
            None => {
                if waited >= timeout_ms {
                    return Ok(Attempt::TimedOut);
                }
                p.sleep_ms(2)?;
                waited += 2;
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
        }
    }
}

/// One attempt of the hardened RPC: connect, send the pre-encoded
/// tagged request, wait (bounded) for the reply.
fn rpc_attempt(p: &Proc, host: &str, wire: &[u8], timeout_ms: u64) -> SysResult<Attempt> {
    let s = p.socket(Domain::Inet, SockType::Stream)?;
    let result = (|| {
        if p.connect_host(s, host, METERD_PORT).is_err() {
            return Ok(Attempt::Unreachable);
        }
        if p.write(s, wire).is_err() {
            return Ok(Attempt::Unreachable);
        }
        read_frame_deadline(p, s, timeout_ms)
    })();
    let _ = p.close(s);
    result
}

/// The hardened controller-side RPC: per-attempt reply timeout,
/// bounded exponential-backoff retries, and an idempotency key so a
/// retried request is applied by the daemon at most once (the daemon
/// replays its cached reply for a request id it has already served).
///
/// Failure is reported in-band rather than as an error: when every
/// attempt is exhausted the result is an [`Reply::Ack`] carrying
/// [`RpcStatus::Timeout`] (sent but no reply in time) or
/// [`RpcStatus::Unavailable`] (could not reach the daemon at all), so
/// callers handle a dead daemon through the same status path as any
/// other refusal.
///
/// # Errors
///
/// Only process-fatal errors ([`SysError::Killed`]) propagate.
pub fn rpc_call_retry(
    p: &Proc,
    host: &str,
    req: &Request,
    timeout_ms: u64,
    mut retry: Backoff,
) -> SysResult<Reply> {
    let req_id = NEXT_REQ_ID.fetch_add(1, Ordering::Relaxed);
    let wire = Request::Tagged {
        req_id,
        inner: Box::new(req.clone()),
    }
    .encode();
    // Per-link RPC health, labelled by the (caller, callee) pair so a
    // partition shows up on exactly the affected link.
    let link = format!("{}->{}", p.machine().name(), host);
    let r = dpm_telemetry::registry();
    loop {
        let last = match rpc_attempt(p, host, &wire, timeout_ms) {
            Ok(Attempt::Got(reply)) => return Ok(reply),
            Ok(Attempt::Unreachable) => {
                r.counter("meterd", "rpc_unreachable", &link).inc();
                RpcStatus::Unavailable
            }
            Ok(Attempt::TimedOut) => {
                r.counter("meterd", "rpc_timeouts", &link).inc();
                RpcStatus::Timeout
            }
            Err(SysError::Killed) => return Err(SysError::Killed),
            Err(_) => {
                r.counter("meterd", "rpc_unreachable", &link).inc();
                RpcStatus::Unavailable
            }
        };
        if !retry.wait(p)? {
            dpm_telemetry::note(
                "meterd",
                &link,
                format!(
                    "rpc {req_id} gave up after {} retries ({last:?})",
                    retry.attempts()
                ),
            );
            return Ok(Reply::Ack { status: last });
        }
        r.counter("meterd", "rpc_retries", &link).inc();
    }
}

/// Sends a one-way notification (state change, I/O data) to a
/// controller's notification socket.
///
/// # Errors
///
/// Connection errors propagate.
pub fn notify(p: &Proc, host: &str, port: u16, req: &Request) -> SysResult<()> {
    let s = p.socket(Domain::Inet, SockType::Stream)?;
    let result = (|| {
        p.connect_host(s, host, port)?;
        p.write(s, &req.encode())?;
        Ok(())
    })();
    let _ = p.close(s);
    result
}

/// How many distinct clients the daemon keeps reply history for.
const REPLY_CACHE_CLIENTS: usize = 32;

/// How many served request ids the daemon remembers *per client* for
/// replaying replies to retried [`Request::Tagged`] calls.
const REPLY_CACHE_PER_CLIENT: usize = 64;

/// One client's recently served replies, in least-recently-used order
/// (front = coldest). Request ids are process-global on the caller
/// side, but grouping by client keeps one chatty controller — a
/// takeover doing thousands of `AcquireMany` calls, say — from
/// flushing the dedup window every *other* controller's retries
/// depend on.
#[derive(Debug, Default)]
struct ClientReplies {
    map: HashMap<u64, Vec<u8>>,
    order: VecDeque<u64>,
}

impl ClientReplies {
    fn touch(&mut self, req_id: u64) {
        if let Some(i) = self.order.iter().position(|&id| id == req_id) {
            self.order.remove(i);
            self.order.push_back(req_id);
        }
    }

    fn get(&mut self, req_id: u64) -> Option<Vec<u8>> {
        let hit = self.map.get(&req_id).cloned();
        if hit.is_some() {
            self.touch(req_id);
        }
        hit
    }

    fn insert(&mut self, req_id: u64, reply: Vec<u8>) {
        if self.map.insert(req_id, reply).is_none() {
            self.order.push_back(req_id);
            if self.order.len() > REPLY_CACHE_PER_CLIENT {
                if let Some(old) = self.order.pop_front() {
                    self.map.remove(&old);
                }
            }
        } else {
            self.touch(req_id);
        }
    }
}

/// The daemon's reply cache: per-client LRU maps of encoded replies
/// keyed by request id, with the client population itself LRU-bounded.
/// A retried `CreateFilter` or `Start` whose first reply was lost gets
/// the original reply replayed instead of a second execution.
#[derive(Debug, Default)]
struct ReplyCache {
    clients: HashMap<String, ClientReplies>,
    order: VecDeque<String>,
}

impl ReplyCache {
    fn touch(&mut self, client: &str) {
        if let Some(i) = self.order.iter().position(|c| c == client) {
            self.order.remove(i);
            self.order.push_back(client.to_owned());
        }
    }

    fn get(&mut self, client: &str, req_id: u64) -> Option<Vec<u8>> {
        let hit = self.clients.get_mut(client)?.get(req_id);
        if hit.is_some() {
            self.touch(client);
        }
        hit
    }

    fn insert(&mut self, client: &str, req_id: u64, reply: Vec<u8>) {
        if !self.clients.contains_key(client) {
            self.clients
                .insert(client.to_owned(), ClientReplies::default());
            self.order.push_back(client.to_owned());
            if self.order.len() > REPLY_CACHE_CLIENTS {
                if let Some(old) = self.order.pop_front() {
                    self.clients.remove(&old);
                }
            }
        } else {
            self.touch(client);
        }
        self.clients
            .get_mut(client)
            .expect("client just ensured")
            .insert(req_id, reply);
    }
}

/// The cache key for a connection's peer. The *host* identifies a
/// client — the connecting port is ephemeral and changes on every
/// retry, so it must not partition one caller's history.
fn client_key(who: &SockName) -> String {
    match who {
        SockName::Inet { host, .. } => format!("inet:{host}"),
        SockName::UnixPath(path) => format!("unix:{path}"),
        SockName::Internal(id) => format!("internal:{id}"),
    }
}

/// The machine-local edge pre-filter, when one is running: its pid
/// (so the registry can be cleared when it dies) and its meter port.
///
/// While an edge is registered, every meter connection this daemon
/// wires up — `Create` and `Acquire` alike — goes to the edge instead
/// of crossing the network to the job's filter; the edge applies the
/// selection templates locally and forwards only accepted records
/// upstream. That capture-everything behavior is the point of an edge:
/// one per machine, co-located with the daemon.
type EdgeRegistry = Arc<Mutex<Option<(Pid, u16)>>>;

/// What the daemon remembers about each process it created.
#[derive(Debug, Clone)]
struct ProcInfo {
    control_host: String,
    control_port: u16,
    /// The daemon's end of the stdio gateway socketpair, when the
    /// process's I/O was redirected.
    stdin_fd: Option<Fd>,
}

/// Registers the meterdaemon program and starts one daemon (as root)
/// on every machine of the cluster — the paper's requirement that
/// "there must be a meterdaemon on each machine".
pub fn start_meterdaemons(cluster: &Arc<Cluster>) -> Vec<Pid> {
    cluster.register_program(METERD_PROGRAM, meterd_main);
    let mut pids = Vec::new();
    for m in cluster.machines() {
        cluster.install_program_file(m.name(), "/etc/meterd", METERD_PROGRAM);
        pids.push(m.spawn_fn(METERD_PROGRAM, Uid::ROOT, None, true, |p| {
            meterd_main(p, Vec::new())
        }));
    }
    pids
}

/// The meterdaemon program body. Runs until killed.
///
/// # Errors
///
/// Fatal setup errors (cannot bind the well-known port) propagate;
/// per-request errors are turned into error replies.
pub fn meterd_main(p: Proc, _args: Vec<String>) -> SysResult<()> {
    let listener = p.socket(Domain::Inet, SockType::Stream)?;
    // A restarted daemon can find its well-known port still bound:
    // processes the previous daemon spawned inherited its descriptors
    // (fork semantics, no close-on-exec in 4.2BSD's spawn path here),
    // so the old listener lives until the last such child exits.
    // Retry with the shared bounded backoff instead of dying — the
    // port frees as the orphaned children finish.
    let mut retry = Backoff::standard();
    loop {
        match p.bind(listener, BindTo::Port(METERD_PORT)) {
            Ok(_) => break,
            Err(SysError::Eaddrinuse) => {
                if !retry.wait(&p)? {
                    return Err(SysError::Eaddrinuse);
                }
            }
            Err(e) => return Err(e),
        }
    }
    p.listen(listener, 16)?;

    let procs: Arc<Mutex<HashMap<Pid, ProcInfo>>> = Arc::new(Mutex::new(HashMap::new()));
    let replies: Arc<Mutex<ReplyCache>> = Arc::new(Mutex::new(ReplyCache::default()));
    let edges: EdgeRegistry = Arc::new(Mutex::new(None));

    // The SIGCHLD handler: "when a process changes state (stops or
    // terminates), a signal handling procedure in the meterdaemon is
    // activated. Upon receiving such a notification, the meterdaemon
    // requests a connection to the controller responsible for the
    // terminating process, and then sends the information about the
    // change of state to this controller." (§3.5.1)
    {
        let watcher = p.clone();
        let procs = procs.clone();
        let edges = edges.clone();
        std::thread::spawn(move || loop {
            match watcher.wait_child() {
                Ok((pid, reason)) => {
                    // A dead edge pre-filter must stop capturing meter
                    // connections; new ones go to the job's filter.
                    {
                        let mut e = edges.lock();
                        if e.map(|(epid, _)| epid) == Some(pid) {
                            *e = None;
                        }
                    }
                    let info = procs.lock().get(&pid).cloned();
                    if let Some(info) = info {
                        let state = match reason {
                            TermReason::Normal => 0,
                            TermReason::Killed => 1,
                        };
                        let _ = notify(
                            &watcher,
                            &info.control_host,
                            info.control_port,
                            &Request::StateChange { pid, state },
                        );
                        procs.lock().remove(&pid);
                    }
                }
                Err(SysError::Esrch) => {
                    // No children right now; the daemon may get some
                    // later, or may itself be gone.
                    if watcher
                        .machine()
                        .proc_state(watcher.pid())
                        .map(|s| s.is_dead())
                        != Some(false)
                    {
                        break;
                    }
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
                Err(_) => break,
            }
        });
    }

    loop {
        let (conn, who) = p.accept(listener)?;
        let outcome = serve_one(&p, conn, &who, &procs, &replies, &edges);
        let _ = p.close(conn);
        // Individual request failures must not kill the daemon, but a
        // kill signal must.
        if let Err(SysError::Killed) = outcome {
            return Err(SysError::Killed);
        }
    }
}

/// Handles one temporary connection: one request, one reply. A
/// [`Request::Tagged`] wrapper is unwrapped here; an id the daemon has
/// already served gets its cached reply replayed without re-executing
/// the request.
fn serve_one(
    p: &Proc,
    conn: Fd,
    who: &SockName,
    procs: &Arc<Mutex<HashMap<Pid, ProcInfo>>>,
    replies: &Arc<Mutex<ReplyCache>>,
    edges: &EdgeRegistry,
) -> SysResult<()> {
    let Some(frame) = read_frame(p, conn)? else {
        return Ok(());
    };
    dpm_telemetry::registry()
        .counter("meterd", "rpc_served", p.machine().name())
        .inc();
    let req = match Request::decode(&frame) {
        Ok(r) => r,
        Err(_e) => {
            let _ = p.write(
                conn,
                &Reply::Ack {
                    status: RpcStatus::Fail,
                }
                .encode(),
            );
            return Ok(());
        }
    };
    let (req_id, req) = match req {
        Request::Tagged { req_id, inner } => (Some(req_id), *inner),
        other => (None, other),
    };
    let client = client_key(who);
    if let Some(id) = req_id {
        if let Some(cached) = replies.lock().get(&client, id) {
            dpm_telemetry::registry()
                .counter("meterd", "replay_hits", p.machine().name())
                .inc();
            p.write(conn, &cached)?;
            return Ok(());
        }
    }
    let reply = handle(p, procs, edges, req)?;
    if let Some(reply) = reply {
        let bytes = reply.encode();
        if let Some(id) = req_id {
            replies.lock().insert(&client, id, bytes.clone());
        }
        p.write(conn, &bytes)?;
    }
    Ok(())
}

fn sys_status(e: &SysError) -> RpcStatus {
    match e {
        SysError::Enoent => RpcStatus::NoEnt,
        SysError::Esrch => RpcStatus::Srch,
        SysError::Eperm => RpcStatus::Perm,
        _ => RpcStatus::Fail,
    }
}

/// Executes one request; `Ok(None)` for one-way messages.
fn handle(
    p: &Proc,
    procs: &Arc<Mutex<HashMap<Pid, ProcInfo>>>,
    edges: &EdgeRegistry,
    req: Request,
) -> SysResult<Option<Reply>> {
    match req {
        Request::Create {
            filename,
            params,
            filter_port,
            filter_host,
            meter_flags,
            control_port,
            control_host,
            redirect_io,
            stdin_file,
        } => {
            let reply = create_process(
                p,
                procs,
                edges,
                &filename,
                params,
                filter_port,
                &filter_host,
                meter_flags,
                control_port,
                &control_host,
                redirect_io,
                stdin_file,
            )?;
            Ok(Some(reply))
        }
        Request::CreateFilter { spec } => {
            // The spec renders to the filter program's argv —
            // positional for plain leaves (the §3.4 user-filter
            // contract), keyword for tree roles; shard clamping for
            // legacy v0 bodies happens inside `to_program_args`.
            match p.spawn_file(&spec.filterfile, spec.to_program_args(), None) {
                Ok(pid) => {
                    // Filters run immediately.
                    p.kill(pid, Sig::Cont)?;
                    if spec.role == FilterRole::Edge {
                        *edges.lock() = Some((pid, spec.port));
                    }
                    Ok(Some(Reply::Create {
                        pid,
                        status: RpcStatus::Ok,
                    }))
                }
                Err(e) => Ok(Some(Reply::Create {
                    pid: Pid(0),
                    status: sys_status(&e),
                })),
            }
        }
        Request::SetFlags { pid, flags } => Ok(Some(ack(p.setmeter(
            PidSel::Pid(pid),
            FlagSel::Set(flags),
            SockSel::NoChange,
        )))),
        Request::Start { pid } => Ok(Some(ack(p.kill(pid, Sig::Cont)))),
        Request::Stop { pid } => Ok(Some(ack(p.kill(pid, Sig::Stop)))),
        Request::Kill { pid } => Ok(Some(ack(p.kill(pid, Sig::Kill)))),
        Request::Acquire {
            pid,
            filter_port,
            filter_host,
            meter_flags,
            control_port: _,
            control_host: _,
        } => {
            let result = (|| -> SysResult<()> {
                let (host, port) = filter_target(p, edges, &filter_host, filter_port);
                let s = connect_filter(p, &host, port)?;
                let r = p.setmeter(PidSel::Pid(pid), FlagSel::Set(meter_flags), SockSel::Fd(s));
                let _ = p.close(s);
                r
            })();
            Ok(Some(match result {
                Ok(()) => Reply::Create {
                    pid,
                    status: RpcStatus::Ok,
                },
                Err(e) => Reply::Create {
                    pid: Pid(0),
                    status: sys_status(&e),
                },
            }))
        }
        Request::AcquireMany {
            pids,
            filter_port,
            filter_host,
            meter_flags,
            control_port,
            control_host,
            rebind_only,
        } => {
            dpm_telemetry::registry()
                .counter("meterd", "acquire_many_pids", p.machine().name())
                .add(pids.len() as u64);
            if rebind_only {
                // Takeover path: the processes are already metered and
                // their filter connections must not be disturbed; only
                // the controller that owns them has changed. Re-point
                // the daemon's notion of each process's controller so
                // state-change notifications reach the new owner.
                let mut results = Vec::with_capacity(pids.len());
                let mut table = procs.lock();
                for pid in pids {
                    let alive = p
                        .machine()
                        .proc_state(pid)
                        .map(|s| !s.is_dead())
                        .unwrap_or(false);
                    if alive {
                        let info = table.entry(pid).or_insert_with(|| ProcInfo {
                            control_host: String::new(),
                            control_port: 0,
                            stdin_fd: None,
                        });
                        info.control_host = control_host.clone();
                        info.control_port = control_port;
                        results.push((pid, RpcStatus::Ok));
                    } else {
                        results.push((pid, RpcStatus::Srch));
                    }
                }
                Ok(Some(Reply::AcquireMany {
                    status: RpcStatus::Ok,
                    results,
                }))
            } else {
                // Acquire-at-scale path: one connection to the filter
                // is shared by the whole batch — `setmeter` bumps the
                // socket's reference per process, so the descriptor
                // can be closed here as usual. Thousands of processes
                // cost one connect instead of thousands.
                let (host, port) = filter_target(p, edges, &filter_host, filter_port);
                let s = match connect_filter(p, &host, port) {
                    Ok(s) => s,
                    Err(e) => {
                        return Ok(Some(Reply::AcquireMany {
                            status: sys_status(&e),
                            results: Vec::new(),
                        }));
                    }
                };
                let mut results = Vec::with_capacity(pids.len());
                for pid in pids {
                    match p.setmeter(PidSel::Pid(pid), FlagSel::Set(meter_flags), SockSel::Fd(s)) {
                        Ok(()) => results.push((pid, RpcStatus::Ok)),
                        Err(e) => results.push((pid, sys_status(&e))),
                    }
                }
                let _ = p.close(s);
                Ok(Some(Reply::AcquireMany {
                    status: RpcStatus::Ok,
                    results,
                }))
            }
        }
        Request::GetFile { path } => Ok(Some(match p.machine().fs().read(&path) {
            Some(data) => Reply::File {
                status: RpcStatus::Ok,
                data,
            },
            None => Reply::File {
                status: RpcStatus::NoEnt,
                data: Vec::new(),
            },
        })),
        Request::ClearMeter { pid } => Ok(Some(ack(p.setmeter(
            PidSel::Pid(pid),
            FlagSel::None,
            SockSel::None,
        )))),
        Request::WriteFile { path, data } => {
            p.machine().fs().write(&path, data);
            Ok(Some(Reply::Ack {
                status: RpcStatus::Ok,
            }))
        }
        Request::SendInput { pid, data } => {
            let fd = procs.lock().get(&pid).and_then(|i| i.stdin_fd);
            Ok(Some(match fd {
                Some(fd) => ack(p.write(fd, &data).map(|_| ())),
                None => Reply::Ack {
                    status: RpcStatus::Srch,
                },
            }))
        }
        Request::QueryProc { pid } => Ok(Some(match p.machine().proc_state(pid) {
            Some(state) => Reply::ProcStatus {
                status: RpcStatus::Ok,
                state: match state {
                    RunState::Zombie(TermReason::Normal) => 0,
                    RunState::Zombie(TermReason::Killed) => 1,
                    RunState::Stopped => 2,
                    RunState::Embryo | RunState::Running => 3,
                },
            },
            None => Reply::ProcStatus {
                status: RpcStatus::Srch,
                state: 0,
            },
        })),
        Request::ListFiles { prefix } => Ok(Some(Reply::FileList {
            status: RpcStatus::Ok,
            names: p.machine().fs().list(&prefix),
        })),
        // Tagged is unwrapped by `serve_one` before dispatch; one
        // arriving here is a protocol violation (nested wrapping is
        // also rejected at decode time).
        Request::Tagged { .. } => Ok(Some(Reply::Ack {
            status: RpcStatus::Fail,
        })),
        // One-way messages are controller-bound; a daemon receiving
        // them ignores them.
        Request::StateChange { .. } | Request::IoData { .. } => Ok(None),
    }
}

/// Connects a stream socket to the filter on the shared backoff
/// policy — a just-created filter may not have bound its port yet.
fn connect_filter(p: &Proc, host: &str, port: u16) -> SysResult<Fd> {
    connect_backoff(p, host, port, Backoff::standard())
}

/// Where a meter connection should really go: the machine-local edge
/// pre-filter when one is registered (selection happens before the
/// network, only accepted records travel upstream), otherwise the
/// filter the request named.
fn filter_target(
    p: &Proc,
    edges: &EdgeRegistry,
    filter_host: &str,
    filter_port: u16,
) -> (String, u16) {
    match *edges.lock() {
        Some((_, eport)) => (p.machine().name().to_owned(), eport),
        None => (filter_host.to_owned(), filter_port),
    }
}

fn ack<T>(r: SysResult<T>) -> Reply {
    match r {
        Ok(_) => Reply::Ack {
            status: RpcStatus::Ok,
        },
        Err(e) => Reply::Ack {
            status: sys_status(&e),
        },
    }
}

#[allow(clippy::too_many_arguments)]
fn create_process(
    p: &Proc,
    procs: &Arc<Mutex<HashMap<Pid, ProcInfo>>>,
    edges: &EdgeRegistry,
    filename: &str,
    params: Vec<String>,
    filter_port: u16,
    filter_host: &str,
    meter_flags: MeterFlags,
    control_port: u16,
    control_host: &str,
    redirect_io: bool,
    stdin_file: Option<String>,
) -> SysResult<Reply> {
    // The meter connection: "the meterdaemon creates its socket by
    // calling socket(), and initiates the connection to the filter.
    // Once the connection is established, the daemon calls setmeter(),
    // passing to it the connected socket descriptor." (§4.1)
    let meter_sock = if meter_flags.meters_anything() || filter_port != 0 {
        let (host, port) = filter_target(p, edges, filter_host, filter_port);
        match connect_filter(p, &host, port) {
            Ok(s) => Some(s),
            Err(e) => {
                return Ok(Reply::Create {
                    pid: Pid(0),
                    status: sys_status(&e),
                });
            }
        }
    } else {
        None
    };

    // The stdio gateway (§3.5.2): one socketpair; the child's stdio
    // descriptors all point at its end.
    let stdio = if redirect_io {
        let (ours, theirs) = p.socketpair()?;
        Some((ours, theirs))
    } else {
        None
    };

    let spawned = p.spawn_file(filename, params, stdio.map(|(_, theirs)| theirs));
    let pid = match spawned {
        Ok(pid) => pid,
        Err(e) => {
            if let Some(s) = meter_sock {
                let _ = p.close(s);
            }
            if let Some((a, b)) = stdio {
                let _ = p.close(a);
                let _ = p.close(b);
            }
            return Ok(Reply::Create {
                pid: Pid(0),
                status: sys_status(&e),
            });
        }
    };

    if let Some(s) = meter_sock {
        p.setmeter(PidSel::Pid(pid), FlagSel::Set(meter_flags), SockSel::Fd(s))?;
        p.close(s)?;
    }

    let mut stdin_fd = None;
    if let Some((ours, theirs)) = stdio {
        // The child holds `theirs` through its stdio slots.
        p.close(theirs)?;
        stdin_fd = Some(ours);
        // Standard input from a file (§3.5.2): the daemon opens the
        // (already-copied) file and feeds it down the gateway, then
        // half-closes so the process sees end-of-file. The reverse
        // direction — the process's stdout — keeps flowing.
        if let Some(path) = &stdin_file {
            match p.machine().fs().read(path) {
                Some(contents) => {
                    p.write(ours, &contents)?;
                    p.shutdown_write(ours)?;
                    stdin_fd = None; // no terminal input possible now
                }
                None => {
                    // The input file is missing: fail the create.
                    let _ = p.kill(pid, Sig::Kill);
                    let _ = p.close(ours);
                    return Ok(Reply::Create {
                        pid: Pid(0),
                        status: RpcStatus::NoEnt,
                    });
                }
            }
        }
        // Output forwarder: reads the gateway and relays each chunk to
        // the controller over a fresh connection, mirroring the
        // daemon's temporary-connection style.
        let fwd_host = control_host.to_owned();
        let fwd_port = control_port;
        p.fork_with(move |c| {
            loop {
                let data = c.read(ours, 1024)?;
                if data.is_empty() {
                    break;
                }
                let _ = notify(&c, &fwd_host, fwd_port, &Request::IoData { pid, data });
            }
            Ok(())
        })?;
    }

    procs.lock().insert(
        pid,
        ProcInfo {
            control_host: control_host.to_owned(),
            control_port,
            stdin_fd,
        },
    );
    Ok(Reply::Create {
        pid,
        status: RpcStatus::Ok,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reply(n: u8) -> Vec<u8> {
        vec![n; 4]
    }

    #[test]
    fn dedup_holds_within_the_window() {
        let mut cache = ReplyCache::default();
        for id in 0..REPLY_CACHE_PER_CLIENT as u64 {
            cache.insert("inet:1", id, reply(id as u8));
        }
        // Every id in the window replays its original reply — a retry
        // is never re-executed.
        for id in 0..REPLY_CACHE_PER_CLIENT as u64 {
            assert_eq!(cache.get("inet:1", id), Some(reply(id as u8)), "id {id}");
        }
        // Re-inserting an id keeps the first reply's bytes canonical
        // for LRU purposes and does not grow the window.
        cache.insert("inet:1", 0, reply(99));
        assert_eq!(cache.clients["inet:1"].order.len(), REPLY_CACHE_PER_CLIENT);
    }

    #[test]
    fn per_client_lru_evicts_coldest_id_first() {
        let mut cache = ReplyCache::default();
        for id in 0..REPLY_CACHE_PER_CLIENT as u64 {
            cache.insert("inet:1", id, reply(id as u8));
        }
        // Touch id 0 so id 1 becomes the coldest.
        assert!(cache.get("inet:1", 0).is_some());
        cache.insert("inet:1", REPLY_CACHE_PER_CLIENT as u64, reply(7));
        assert!(
            cache.get("inet:1", 0).is_some(),
            "recently used id survives"
        );
        assert_eq!(cache.get("inet:1", 1), None, "coldest id evicted");
        assert_eq!(
            cache.clients["inet:1"].map.len(),
            REPLY_CACHE_PER_CLIENT,
            "window stays capped"
        );
    }

    #[test]
    fn one_chatty_client_cannot_flush_anothers_window() {
        let mut cache = ReplyCache::default();
        cache.insert("inet:1", 42, reply(1));
        // Another controller (a takeover doing a large acquire, say)
        // burns far more ids than one window holds.
        for id in 0..10 * REPLY_CACHE_PER_CLIENT as u64 {
            cache.insert("inet:2", id, reply(2));
        }
        assert_eq!(
            cache.get("inet:1", 42),
            Some(reply(1)),
            "first client's dedup window is intact"
        );
        assert_eq!(cache.clients["inet:2"].map.len(), REPLY_CACHE_PER_CLIENT);
    }

    #[test]
    fn client_population_is_lru_bounded() {
        let mut cache = ReplyCache::default();
        for c in 0..REPLY_CACHE_CLIENTS as u32 {
            cache.insert(&format!("inet:{c}"), 1, reply(c as u8));
        }
        // Keep client 0 warm, then overflow the population.
        assert!(cache.get("inet:0", 1).is_some());
        cache.insert("inet:999", 1, reply(9));
        assert_eq!(cache.clients.len(), REPLY_CACHE_CLIENTS);
        assert!(cache.get("inet:0", 1).is_some(), "warm client survives");
        assert_eq!(cache.get("inet:1", 1), None, "coldest client evicted");
    }

    #[test]
    fn client_key_ignores_ephemeral_port() {
        let a = client_key(&SockName::Inet {
            host: 3,
            port: 1024,
        });
        let b = client_key(&SockName::Inet {
            host: 3,
            port: 2771,
        });
        assert_eq!(a, b, "same host, different connections: one client");
        let c = client_key(&SockName::Inet {
            host: 4,
            port: 1024,
        });
        assert_ne!(a, c);
    }
}
