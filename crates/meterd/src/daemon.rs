//! The meterdaemon.
//!
//! "To provide process control across machine boundaries, we use
//! daemon processes executing on each machine. … There must be a
//! meterdaemon on each machine that supports the measurement system.
//! The sole purpose of the meterdaemons is to carry out control
//! functions for the controller." (§3.5.1)
//!
//! The exchange is an RPC over a *temporary* stream connection: "the
//! stream connection between the controller and a meterdaemon exists
//! for the duration of a single exchange of messages" (§3.5.1). The
//! one exception is process-termination reporting, where the daemon
//! initiates the connection to the controller.

use crate::proto::{frame_len, Reply, Request, RpcStatus};
use dpm_meter::{MeterFlags, TermReason};
use dpm_simos::{
    BindTo, Cluster, Domain, Fd, FlagSel, Pid, PidSel, Proc, Sig, SockSel, SockType, SysError,
    SysResult, Uid,
};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// The well-known port every meterdaemon listens on.
pub const METERD_PORT: u16 = 571;

/// The program-registry name of the meterdaemon.
pub const METERD_PROGRAM: &str = "meterd";

/// Reads exactly `n` bytes from a stream descriptor; `None` at EOF.
///
/// # Errors
///
/// Propagates any read error.
pub fn read_exact(p: &Proc, fd: Fd, n: usize) -> SysResult<Option<Vec<u8>>> {
    let mut buf = Vec::with_capacity(n);
    while buf.len() < n {
        let chunk = p.read(fd, n - buf.len())?;
        if chunk.is_empty() {
            return Ok(None);
        }
        buf.extend_from_slice(&chunk);
    }
    Ok(Some(buf))
}

/// Reads one length-prefixed protocol frame; `None` at EOF.
///
/// # Errors
///
/// `EINVAL` on a malformed length; read errors propagate.
pub fn read_frame(p: &Proc, fd: Fd) -> SysResult<Option<Vec<u8>>> {
    let Some(prefix) = read_exact(p, fd, 4)? else {
        return Ok(None);
    };
    let total = frame_len(&prefix).ok_or(SysError::Einval)?;
    if !(8..=16 * 1024 * 1024).contains(&total) {
        return Err(SysError::Einval);
    }
    let Some(rest) = read_exact(p, fd, total - 4)? else {
        return Ok(None);
    };
    let mut out = prefix;
    out.extend_from_slice(&rest);
    Ok(Some(out))
}

/// Performs one controller-side RPC: temporary connection, one
/// request, one reply, close (§3.5.1).
///
/// # Errors
///
/// Connection errors propagate; a garbled reply is `EINVAL`.
pub fn rpc_call(p: &Proc, host: &str, req: &Request) -> SysResult<Reply> {
    let s = p.socket(Domain::Inet, SockType::Stream)?;
    let result = (|| {
        p.connect_host(s, host, METERD_PORT)?;
        p.write(s, &req.encode())?;
        let frame = read_frame(p, s)?.ok_or(SysError::Epipe)?;
        Reply::decode(&frame).map_err(|_| SysError::Einval)
    })();
    let _ = p.close(s);
    result
}

/// Sends a one-way notification (state change, I/O data) to a
/// controller's notification socket.
///
/// # Errors
///
/// Connection errors propagate.
pub fn notify(p: &Proc, host: &str, port: u16, req: &Request) -> SysResult<()> {
    let s = p.socket(Domain::Inet, SockType::Stream)?;
    let result = (|| {
        p.connect_host(s, host, port)?;
        p.write(s, &req.encode())?;
        Ok(())
    })();
    let _ = p.close(s);
    result
}

/// What the daemon remembers about each process it created.
#[derive(Debug, Clone)]
struct ProcInfo {
    control_host: String,
    control_port: u16,
    /// The daemon's end of the stdio gateway socketpair, when the
    /// process's I/O was redirected.
    stdin_fd: Option<Fd>,
}

/// Registers the meterdaemon program and starts one daemon (as root)
/// on every machine of the cluster — the paper's requirement that
/// "there must be a meterdaemon on each machine".
pub fn start_meterdaemons(cluster: &Arc<Cluster>) -> Vec<Pid> {
    cluster.register_program(METERD_PROGRAM, meterd_main);
    let mut pids = Vec::new();
    for m in cluster.machines() {
        cluster.install_program_file(m.name(), "/etc/meterd", METERD_PROGRAM);
        pids.push(m.spawn_fn(METERD_PROGRAM, Uid::ROOT, None, true, |p| {
            meterd_main(p, Vec::new())
        }));
    }
    pids
}

/// The meterdaemon program body. Runs until killed.
///
/// # Errors
///
/// Fatal setup errors (cannot bind the well-known port) propagate;
/// per-request errors are turned into error replies.
pub fn meterd_main(p: Proc, _args: Vec<String>) -> SysResult<()> {
    let listener = p.socket(Domain::Inet, SockType::Stream)?;
    p.bind(listener, BindTo::Port(METERD_PORT))?;
    p.listen(listener, 16)?;

    let procs: Arc<Mutex<HashMap<Pid, ProcInfo>>> = Arc::new(Mutex::new(HashMap::new()));

    // The SIGCHLD handler: "when a process changes state (stops or
    // terminates), a signal handling procedure in the meterdaemon is
    // activated. Upon receiving such a notification, the meterdaemon
    // requests a connection to the controller responsible for the
    // terminating process, and then sends the information about the
    // change of state to this controller." (§3.5.1)
    {
        let watcher = p.clone();
        let procs = procs.clone();
        std::thread::spawn(move || loop {
            match watcher.wait_child() {
                Ok((pid, reason)) => {
                    let info = procs.lock().get(&pid).cloned();
                    if let Some(info) = info {
                        let state = match reason {
                            TermReason::Normal => 0,
                            TermReason::Killed => 1,
                        };
                        let _ = notify(
                            &watcher,
                            &info.control_host,
                            info.control_port,
                            &Request::StateChange { pid, state },
                        );
                        procs.lock().remove(&pid);
                    }
                }
                Err(SysError::Esrch) => {
                    // No children right now; the daemon may get some
                    // later, or may itself be gone.
                    if watcher
                        .machine()
                        .proc_state(watcher.pid())
                        .map(|s| s.is_dead())
                        != Some(false)
                    {
                        break;
                    }
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
                Err(_) => break,
            }
        });
    }

    loop {
        let (conn, _who) = p.accept(listener)?;
        let outcome = serve_one(&p, conn, &procs);
        let _ = p.close(conn);
        // Individual request failures must not kill the daemon, but a
        // kill signal must.
        if let Err(SysError::Killed) = outcome {
            return Err(SysError::Killed);
        }
    }
}

/// Handles one temporary connection: one request, one reply.
fn serve_one(p: &Proc, conn: Fd, procs: &Arc<Mutex<HashMap<Pid, ProcInfo>>>) -> SysResult<()> {
    let Some(frame) = read_frame(p, conn)? else {
        return Ok(());
    };
    let req = match Request::decode(&frame) {
        Ok(r) => r,
        Err(_e) => {
            let _ = p.write(
                conn,
                &Reply::Ack {
                    status: RpcStatus::Fail,
                }
                .encode(),
            );
            return Ok(());
        }
    };
    let reply = handle(p, procs, req)?;
    if let Some(reply) = reply {
        p.write(conn, &reply.encode())?;
    }
    Ok(())
}

fn sys_status(e: &SysError) -> RpcStatus {
    match e {
        SysError::Enoent => RpcStatus::NoEnt,
        SysError::Esrch => RpcStatus::Srch,
        SysError::Eperm => RpcStatus::Perm,
        _ => RpcStatus::Fail,
    }
}

/// Executes one request; `Ok(None)` for one-way messages.
fn handle(
    p: &Proc,
    procs: &Arc<Mutex<HashMap<Pid, ProcInfo>>>,
    req: Request,
) -> SysResult<Option<Reply>> {
    match req {
        Request::Create {
            filename,
            params,
            filter_port,
            filter_host,
            meter_flags,
            control_port,
            control_host,
            redirect_io,
            stdin_file,
        } => {
            let reply = create_process(
                p,
                procs,
                &filename,
                params,
                filter_port,
                &filter_host,
                meter_flags,
                control_port,
                &control_host,
                redirect_io,
                stdin_file,
            )?;
            Ok(Some(reply))
        }
        Request::CreateFilter {
            filterfile,
            port,
            logfile,
            descriptions,
            templates,
            shards,
            log_mode,
        } => {
            // The shard count rides along as the filter program's
            // fifth argument (`0` would be rejected by the standard
            // filter, so treat it as "default" here) and the log sink
            // mode as the sixth.
            let args = vec![
                port.to_string(),
                logfile,
                descriptions,
                templates,
                shards.max(1).to_string(),
                log_mode.as_arg().to_string(),
            ];
            match p.spawn_file(&filterfile, args, None) {
                Ok(pid) => {
                    // Filters run immediately.
                    p.kill(pid, Sig::Cont)?;
                    Ok(Some(Reply::Create {
                        pid,
                        status: RpcStatus::Ok,
                    }))
                }
                Err(e) => Ok(Some(Reply::Create {
                    pid: Pid(0),
                    status: sys_status(&e),
                })),
            }
        }
        Request::SetFlags { pid, flags } => Ok(Some(ack(p.setmeter(
            PidSel::Pid(pid),
            FlagSel::Set(flags),
            SockSel::NoChange,
        )))),
        Request::Start { pid } => Ok(Some(ack(p.kill(pid, Sig::Cont)))),
        Request::Stop { pid } => Ok(Some(ack(p.kill(pid, Sig::Stop)))),
        Request::Kill { pid } => Ok(Some(ack(p.kill(pid, Sig::Kill)))),
        Request::Acquire {
            pid,
            filter_port,
            filter_host,
            meter_flags,
            control_port: _,
            control_host: _,
        } => {
            let result = (|| -> SysResult<()> {
                let s = connect_filter(p, &filter_host, filter_port)?;
                let r = p.setmeter(PidSel::Pid(pid), FlagSel::Set(meter_flags), SockSel::Fd(s));
                let _ = p.close(s);
                r
            })();
            Ok(Some(match result {
                Ok(()) => Reply::Create {
                    pid,
                    status: RpcStatus::Ok,
                },
                Err(e) => Reply::Create {
                    pid: Pid(0),
                    status: sys_status(&e),
                },
            }))
        }
        Request::GetFile { path } => Ok(Some(match p.machine().fs().read(&path) {
            Some(data) => Reply::File {
                status: RpcStatus::Ok,
                data,
            },
            None => Reply::File {
                status: RpcStatus::NoEnt,
                data: Vec::new(),
            },
        })),
        Request::ClearMeter { pid } => Ok(Some(ack(p.setmeter(
            PidSel::Pid(pid),
            FlagSel::None,
            SockSel::None,
        )))),
        Request::WriteFile { path, data } => {
            p.machine().fs().write(&path, data);
            Ok(Some(Reply::Ack {
                status: RpcStatus::Ok,
            }))
        }
        Request::SendInput { pid, data } => {
            let fd = procs.lock().get(&pid).and_then(|i| i.stdin_fd);
            Ok(Some(match fd {
                Some(fd) => ack(p.write(fd, &data).map(|_| ())),
                None => Reply::Ack {
                    status: RpcStatus::Srch,
                },
            }))
        }
        // One-way messages are controller-bound; a daemon receiving
        // them ignores them.
        Request::StateChange { .. } | Request::IoData { .. } => Ok(None),
    }
}

/// Connects a stream socket to the filter, retrying briefly — a
/// just-created filter may not have bound its port yet.
fn connect_filter(p: &Proc, host: &str, port: u16) -> SysResult<Fd> {
    let mut tries = 0;
    loop {
        let s = p.socket(Domain::Inet, SockType::Stream)?;
        match p.connect_host(s, host, port) {
            Ok(()) => return Ok(s),
            Err(SysError::Econnrefused) if tries < 200 => {
                let _ = p.close(s);
                tries += 1;
                p.sleep_ms(5)?;
                // Virtual sleeps are instantaneous in real time; give
                // the just-spawned filter thread real time to bind.
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            Err(e) => {
                let _ = p.close(s);
                return Err(e);
            }
        }
    }
}

fn ack<T>(r: SysResult<T>) -> Reply {
    match r {
        Ok(_) => Reply::Ack {
            status: RpcStatus::Ok,
        },
        Err(e) => Reply::Ack {
            status: sys_status(&e),
        },
    }
}

#[allow(clippy::too_many_arguments)]
fn create_process(
    p: &Proc,
    procs: &Arc<Mutex<HashMap<Pid, ProcInfo>>>,
    filename: &str,
    params: Vec<String>,
    filter_port: u16,
    filter_host: &str,
    meter_flags: MeterFlags,
    control_port: u16,
    control_host: &str,
    redirect_io: bool,
    stdin_file: Option<String>,
) -> SysResult<Reply> {
    // The meter connection: "the meterdaemon creates its socket by
    // calling socket(), and initiates the connection to the filter.
    // Once the connection is established, the daemon calls setmeter(),
    // passing to it the connected socket descriptor." (§4.1)
    let meter_sock = if meter_flags.meters_anything() || filter_port != 0 {
        match connect_filter(p, filter_host, filter_port) {
            Ok(s) => Some(s),
            Err(e) => {
                return Ok(Reply::Create {
                    pid: Pid(0),
                    status: sys_status(&e),
                });
            }
        }
    } else {
        None
    };

    // The stdio gateway (§3.5.2): one socketpair; the child's stdio
    // descriptors all point at its end.
    let stdio = if redirect_io {
        let (ours, theirs) = p.socketpair()?;
        Some((ours, theirs))
    } else {
        None
    };

    let spawned = p.spawn_file(filename, params, stdio.map(|(_, theirs)| theirs));
    let pid = match spawned {
        Ok(pid) => pid,
        Err(e) => {
            if let Some(s) = meter_sock {
                let _ = p.close(s);
            }
            if let Some((a, b)) = stdio {
                let _ = p.close(a);
                let _ = p.close(b);
            }
            return Ok(Reply::Create {
                pid: Pid(0),
                status: sys_status(&e),
            });
        }
    };

    if let Some(s) = meter_sock {
        p.setmeter(PidSel::Pid(pid), FlagSel::Set(meter_flags), SockSel::Fd(s))?;
        p.close(s)?;
    }

    let mut stdin_fd = None;
    if let Some((ours, theirs)) = stdio {
        // The child holds `theirs` through its stdio slots.
        p.close(theirs)?;
        stdin_fd = Some(ours);
        // Standard input from a file (§3.5.2): the daemon opens the
        // (already-copied) file and feeds it down the gateway, then
        // half-closes so the process sees end-of-file. The reverse
        // direction — the process's stdout — keeps flowing.
        if let Some(path) = &stdin_file {
            match p.machine().fs().read(path) {
                Some(contents) => {
                    p.write(ours, &contents)?;
                    p.shutdown_write(ours)?;
                    stdin_fd = None; // no terminal input possible now
                }
                None => {
                    // The input file is missing: fail the create.
                    let _ = p.kill(pid, Sig::Kill);
                    let _ = p.close(ours);
                    return Ok(Reply::Create {
                        pid: Pid(0),
                        status: RpcStatus::NoEnt,
                    });
                }
            }
        }
        // Output forwarder: reads the gateway and relays each chunk to
        // the controller over a fresh connection, mirroring the
        // daemon's temporary-connection style.
        let fwd_host = control_host.to_owned();
        let fwd_port = control_port;
        p.fork_with(move |c| {
            loop {
                let data = c.read(ours, 1024)?;
                if data.is_empty() {
                    break;
                }
                let _ = notify(&c, &fwd_host, fwd_port, &Request::IoData { pid, data });
            }
            Ok(())
        })?;
    }

    procs.lock().insert(
        pid,
        ProcInfo {
            control_host: control_host.to_owned(),
            control_port,
            stdin_fd,
        },
    );
    Ok(Reply::Create {
        pid,
        status: RpcStatus::Ok,
    })
}
