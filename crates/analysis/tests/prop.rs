//! Property-based tests for the analyses: happens-before is a strict
//! partial order, vector clocks agree with reachability, pairing never
//! invents bytes, and everything survives arbitrary log text.

use dpm_analysis::{Analysis, EventKind, HappensBefore, Pairing, Trace};
use proptest::prelude::*;

/// Generates a plausible two-machine datagram conversation: machine 0
/// sends, machine 1 receives a prefix of them (models loss).
fn arb_conversation() -> impl Strategy<Value = String> {
    (1usize..15, 0usize..15, 0u32..1000).prop_map(|(sends, recvs_requested, base)| {
        let recvs = recvs_requested.min(sends);
        let mut s = String::new();
        for i in 0..sends {
            s.push_str(&format!(
                "event=send machine=0 cpuTime={} procTime=0 traceType=1 pid=1 pc={i} sock=3 msgLength=10 destName=inet:1:53\n",
                base + i as u32
            ));
        }
        for i in 0..recvs {
            s.push_str(&format!(
                "event=receive machine=1 cpuTime={} procTime=0 traceType=3 pid=2 pc={i} sock=7 msgLength=10 sourceName=inet:0:1024\n",
                base + 100 + i as u32
            ));
        }
        s
    })
}

proptest! {
    #[test]
    fn happens_before_is_a_strict_partial_order(log in arb_conversation()) {
        let trace = Trace::parse(&log);
        let pairing = Pairing::analyze(&trace);
        let hb = HappensBefore::build(&trace, &pairing);
        let n = trace.len();
        for a in 0..n {
            prop_assert!(!hb.precedes(a, a), "irreflexive");
            for b in 0..n {
                if hb.precedes(a, b) {
                    prop_assert!(!hb.precedes(b, a), "antisymmetric {a} {b}");
                }
                for c in 0..n {
                    if hb.precedes(a, b) && hb.precedes(b, c) {
                        prop_assert!(hb.precedes(a, c), "transitive {a} {b} {c}");
                    }
                }
            }
        }
    }

    #[test]
    fn lamport_clocks_respect_the_order(log in arb_conversation()) {
        let trace = Trace::parse(&log);
        let pairing = Pairing::analyze(&trace);
        let hb = HappensBefore::build(&trace, &pairing);
        for a in 0..trace.len() {
            for b in 0..trace.len() {
                if hb.precedes(a, b) {
                    prop_assert!(hb.lamport(a) < hb.lamport(b));
                }
            }
        }
    }

    #[test]
    fn pairing_conserves_bytes(log in arb_conversation()) {
        let trace = Trace::parse(&log);
        let pairing = Pairing::analyze(&trace);
        let sent: u64 = trace.events.iter().filter_map(|e| match &e.kind {
            EventKind::Send { len, .. } => Some(*len as u64),
            _ => None,
        }).sum();
        let received: u64 = trace.events.iter().filter_map(|e| match &e.kind {
            EventKind::Recv { len, .. } => Some(*len as u64),
            _ => None,
        }).sum();
        let matched: u64 = pairing.messages.iter().map(|m| m.bytes as u64).sum();
        prop_assert!(matched <= sent, "matched {matched} > sent {sent}");
        prop_assert!(matched <= received, "matched {matched} > received {received}");
        // Every send is either matched or reported unmatched.
        let send_count = trace.events.iter()
            .filter(|e| matches!(e.kind, EventKind::Send { .. })).count();
        let matched_sends: std::collections::HashSet<_> =
            pairing.messages.iter().map(|m| m.send_idx).collect();
        prop_assert_eq!(
            matched_sends.len() + pairing.unmatched_sends.len(),
            send_count
        );
    }

    #[test]
    fn send_precedes_its_receive(log in arb_conversation()) {
        let trace = Trace::parse(&log);
        let pairing = Pairing::analyze(&trace);
        let hb = HappensBefore::build(&trace, &pairing);
        for m in &pairing.messages {
            prop_assert!(hb.precedes(m.send_idx, m.recv_idx));
        }
    }

    #[test]
    fn analysis_never_panics_on_arbitrary_text(text in "(\\PC{0,40}\n){0,20}") {
        let a = Analysis::of_log(&text);
        let _ = a.summary(); // must not panic
    }

    #[test]
    fn ordered_fraction_is_a_probability(log in arb_conversation()) {
        let a = Analysis::of_log(&log);
        let f = a.hb.ordered_fraction();
        prop_assert!((0.0..=1.0).contains(&f), "{f}");
    }
}
