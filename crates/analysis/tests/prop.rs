//! Property-based tests for the analyses: happens-before is a strict
//! partial order, vector clocks agree with reachability, pairing never
//! invents bytes, and everything survives arbitrary log text.

use dpm_analysis::{Analysis, EventKind, HappensBefore, Pairing, Trace};
use proptest::prelude::*;

/// Generates a plausible two-machine datagram conversation: machine 0
/// sends, machine 1 receives a prefix of them (models loss).
fn arb_conversation() -> impl Strategy<Value = String> {
    (1usize..15, 0usize..15, 0u32..1000).prop_map(|(sends, recvs_requested, base)| {
        let recvs = recvs_requested.min(sends);
        let mut s = String::new();
        for i in 0..sends {
            s.push_str(&format!(
                "event=send machine=0 cpuTime={} procTime=0 traceType=1 pid=1 pc={i} sock=3 msgLength=10 destName=inet:1:53\n",
                base + i as u32
            ));
        }
        for i in 0..recvs {
            s.push_str(&format!(
                "event=receive machine=1 cpuTime={} procTime=0 traceType=3 pid=2 pc={i} sock=7 msgLength=10 sourceName=inet:0:1024\n",
                base + 100 + i as u32
            ));
        }
        s
    })
}

/// A send line from `src`, addressed to `dst`, `len` bytes.
fn send_line(src: u32, dst: u32, len: u32, cpu: u32) -> String {
    format!(
        "event=send machine={src} cpuTime={cpu} procTime=0 traceType=1 pid={} pc=0 sock=3 msgLength={len} destName=inet:{dst}:53\n",
        10 + src
    )
}

/// The matching receive line on `dst` for a message from `src`.
fn recv_line(src: u32, dst: u32, len: u32, cpu: u32) -> String {
    format!(
        "event=receive machine={dst} cpuTime={cpu} procTime=0 traceType=3 pid={} pc=0 sock=7 msgLength={len} sourceName=inet:{src}:1024\n",
        10 + dst
    )
}

/// Generates a randomized *paired* multi-process trace: messages
/// between three machines with pairwise-distinct lengths (the regime
/// the exact-length datagram matcher is sound in), each delivered or
/// lost per the generated plan, receives interleaved arbitrarily far
/// after their sends. Returns `(log, delivered, lost)`.
fn arb_paired_trace() -> impl Strategy<Value = (String, usize, usize)> {
    let msg = (0u32..3, 1u32..3, any::<bool>(), 0usize..4);
    proptest::collection::vec(msg, 1..25).prop_map(|plan| {
        let mut log = String::new();
        let mut cpu = [0u32; 3];
        let mut pending: Vec<(u32, u32, u32)> = Vec::new();
        let (mut delivered, mut lost) = (0usize, 0usize);
        for (k, (src, dstoff, deliver, flush)) in plan.iter().enumerate() {
            let (src, dst) = (*src, (*src + *dstoff) % 3);
            let len = 20 + k as u32; // unique per message
            cpu[src as usize] += 10;
            log.push_str(&send_line(src, dst, len, cpu[src as usize]));
            if *deliver {
                pending.push((src, dst, len));
                delivered += 1;
            } else {
                lost += 1;
            }
            // Deliver a generated number of queued messages, oldest
            // first — receives trail their sends by arbitrary spans.
            for _ in 0..*flush {
                if pending.is_empty() {
                    break;
                }
                let (s, d, l) = pending.remove(0);
                cpu[d as usize] += 10;
                log.push_str(&recv_line(s, d, l, cpu[d as usize]));
            }
        }
        for (s, d, l) in pending {
            cpu[d as usize] += 10;
            log.push_str(&recv_line(s, d, l, cpu[d as usize]));
        }
        (log, delivered, lost)
    })
}

/// Two events with no message path between them must stay unordered,
/// and one exchange must order everything across it — the concurrency
/// regression pinned by hand.
#[test]
fn concurrent_events_stay_unordered_across_one_exchange() {
    let mut log = String::new();
    log.push_str(&send_line(0, 1, 10, 1)); // 0: the exchanged message
    log.push_str(&send_line(1, 2, 5, 1)); //  1: m1 beacon, pre-receive
    log.push_str(&recv_line(0, 1, 10, 2)); // 2: m1 receives the message
    log.push_str(&send_line(0, 2, 6, 2)); //  3: m0 beacon, post-send
    log.push_str(&send_line(1, 2, 7, 3)); //  4: m1 beacon, post-receive
    let trace = Trace::parse(&log);
    let pairing = Pairing::analyze(&trace);
    let hb = HappensBefore::build(&trace, &pairing);
    assert!(!hb.has_cycle());
    assert_eq!(pairing.messages.len(), 1);

    // Ordered: the send precedes its receive and what follows it.
    assert!(hb.precedes(0, 2));
    assert!(hb.precedes(0, 4));
    assert!(hb.lamport(0) < hb.lamport(2));
    // Concurrent: m1's pre-receive beacon vs the send, and m0's
    // post-send beacon vs m1's receive — no path either way.
    assert!(!hb.precedes(0, 1) && !hb.precedes(1, 0));
    assert!(!hb.precedes(3, 2) && !hb.precedes(2, 3));
    assert!(!hb.precedes(3, 4) && !hb.precedes(4, 3));
}

proptest! {
    #[test]
    fn paired_traces_match_their_plan(
        (log, delivered, lost) in arb_paired_trace()
    ) {
        let trace = Trace::parse(&log);
        let pairing = Pairing::analyze(&trace);
        // Exact-length matching recovers the plan exactly: every
        // delivered message matched, every lost send reported, no
        // surplus receives invented.
        prop_assert_eq!(pairing.messages.len(), delivered);
        prop_assert_eq!(pairing.unmatched_sends.len(), lost);
        prop_assert!(pairing.unmatched_recvs.is_empty());
        let hb = HappensBefore::build(&trace, &pairing);
        prop_assert!(!hb.has_cycle());
        for m in &pairing.messages {
            prop_assert!(hb.precedes(m.send_idx, m.recv_idx));
        }
    }

    #[test]
    fn paired_traces_yield_a_strict_partial_order(
        (log, _, _) in arb_paired_trace()
    ) {
        let trace = Trace::parse(&log);
        let pairing = Pairing::analyze(&trace);
        let hb = HappensBefore::build(&trace, &pairing);
        let n = trace.len();
        for a in 0..n {
            prop_assert!(!hb.precedes(a, a), "irreflexive {a}");
            for b in 0..n {
                if hb.precedes(a, b) {
                    prop_assert!(!hb.precedes(b, a), "antisymmetric {a} {b}");
                    prop_assert!(hb.lamport(a) < hb.lamport(b), "clocks {a} {b}");
                }
                for c in 0..n {
                    if hb.precedes(a, b) && hb.precedes(b, c) {
                        prop_assert!(hb.precedes(a, c), "transitive {a} {b} {c}");
                    }
                }
            }
        }
    }

    #[test]
    fn happens_before_is_a_strict_partial_order(log in arb_conversation()) {
        let trace = Trace::parse(&log);
        let pairing = Pairing::analyze(&trace);
        let hb = HappensBefore::build(&trace, &pairing);
        let n = trace.len();
        for a in 0..n {
            prop_assert!(!hb.precedes(a, a), "irreflexive");
            for b in 0..n {
                if hb.precedes(a, b) {
                    prop_assert!(!hb.precedes(b, a), "antisymmetric {a} {b}");
                }
                for c in 0..n {
                    if hb.precedes(a, b) && hb.precedes(b, c) {
                        prop_assert!(hb.precedes(a, c), "transitive {a} {b} {c}");
                    }
                }
            }
        }
    }

    #[test]
    fn lamport_clocks_respect_the_order(log in arb_conversation()) {
        let trace = Trace::parse(&log);
        let pairing = Pairing::analyze(&trace);
        let hb = HappensBefore::build(&trace, &pairing);
        for a in 0..trace.len() {
            for b in 0..trace.len() {
                if hb.precedes(a, b) {
                    prop_assert!(hb.lamport(a) < hb.lamport(b));
                }
            }
        }
    }

    #[test]
    fn pairing_conserves_bytes(log in arb_conversation()) {
        let trace = Trace::parse(&log);
        let pairing = Pairing::analyze(&trace);
        let sent: u64 = trace.events.iter().filter_map(|e| match &e.kind {
            EventKind::Send { len, .. } => Some(*len as u64),
            _ => None,
        }).sum();
        let received: u64 = trace.events.iter().filter_map(|e| match &e.kind {
            EventKind::Recv { len, .. } => Some(*len as u64),
            _ => None,
        }).sum();
        let matched: u64 = pairing.messages.iter().map(|m| m.bytes as u64).sum();
        prop_assert!(matched <= sent, "matched {matched} > sent {sent}");
        prop_assert!(matched <= received, "matched {matched} > received {received}");
        // Every send is either matched or reported unmatched.
        let send_count = trace.events.iter()
            .filter(|e| matches!(e.kind, EventKind::Send { .. })).count();
        let matched_sends: std::collections::HashSet<_> =
            pairing.messages.iter().map(|m| m.send_idx).collect();
        prop_assert_eq!(
            matched_sends.len() + pairing.unmatched_sends.len(),
            send_count
        );
    }

    #[test]
    fn send_precedes_its_receive(log in arb_conversation()) {
        let trace = Trace::parse(&log);
        let pairing = Pairing::analyze(&trace);
        let hb = HappensBefore::build(&trace, &pairing);
        for m in &pairing.messages {
            prop_assert!(hb.precedes(m.send_idx, m.recv_idx));
        }
    }

    #[test]
    fn analysis_never_panics_on_arbitrary_text(text in "(\\PC{0,40}\n){0,20}") {
        let a = Analysis::of_log(&text);
        let _ = a.summary(); // must not panic
    }

    #[test]
    fn ordered_fraction_is_a_probability(log in arb_conversation()) {
        let a = Analysis::of_log(&log);
        let f = a.hb.ordered_fraction();
        prop_assert!((0.0..=1.0).contains(&f), "{f}");
    }
}
