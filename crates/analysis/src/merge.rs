//! Merging traces from several filters.
//!
//! "Many filter processes may exist simultaneously. Usually, there
//! will be a filter process created per computation." (§3.3) — so a
//! study spanning computations (or one using several filters for
//! load-spreading) holds several log files. Analyses need them as one
//! trace; the only sound interleaving key is *per-process order*, so
//! the merge concatenates logs and then stably orders events by
//! (machine, local clock, original position), which preserves each
//! process's order (its records carry non-decreasing local stamps)
//! without pretending cross-machine stamps are comparable.

use crate::trace::{Event, Trace};

/// Merges several traces into one.
///
/// Events of any single process keep their relative order; events of
/// different machines are arranged by their (incomparable but
/// display-friendly) local stamps. The result's `idx` fields are
/// renumbered.
pub fn merge_traces(traces: Vec<Trace>) -> Trace {
    let mut events: Vec<(usize, Event)> = Vec::new();
    for t in traces {
        for e in t.events {
            events.push((events.len(), e));
        }
    }
    // Stable order: machine, then local clock, then original position
    // (which keeps per-process FIFO for equal stamps).
    events.sort_by_key(|(pos, e)| (e.proc.machine, e.cpu_time, *pos));
    let mut out = Trace::default();
    for (i, (_, mut e)) in events.into_iter().enumerate() {
        e.idx = i;
        out.events.push(e);
    }
    out
}

/// Parses and merges several filter logs.
pub fn merge_logs<'a>(logs: impl IntoIterator<Item = &'a str>) -> Trace {
    merge_traces(logs.into_iter().map(Trace::parse).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pairing::Pairing;
    use crate::trace::EventKind;

    const LOG_A: &str = "\
event=send machine=0 cpuTime=10 procTime=0 traceType=1 pid=1 pc=1 sock=1 msgLength=5 destName=inet:1:9
event=send machine=0 cpuTime=20 procTime=0 traceType=1 pid=1 pc=2 sock=1 msgLength=5 destName=inet:1:9
";
    const LOG_B: &str = "\
event=receive machine=1 cpuTime=15 procTime=0 traceType=3 pid=2 pc=1 sock=2 msgLength=5 sourceName=inet:0:1024
event=receive machine=1 cpuTime=25 procTime=0 traceType=3 pid=2 pc=2 sock=2 msgLength=5 sourceName=inet:0:1024
";

    #[test]
    fn merged_logs_pair_across_files() {
        let t = merge_logs([LOG_A, LOG_B]);
        assert_eq!(t.len(), 4);
        let p = Pairing::analyze(&t);
        assert_eq!(
            p.messages.len(),
            2,
            "sends in one log match receives in the other"
        );
        assert!(p.unmatched_sends.is_empty());
    }

    #[test]
    fn per_process_order_is_preserved() {
        let t = merge_logs([LOG_B, LOG_A]); // reversed file order
        let sends: Vec<u32> = t
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Send { .. }))
            .map(|e| e.cpu_time)
            .collect();
        assert_eq!(sends, vec![10, 20], "process 1's order kept");
        // idx renumbered densely.
        for (i, e) in t.events.iter().enumerate() {
            assert_eq!(e.idx, i);
        }
    }

    #[test]
    fn merging_nothing_is_empty() {
        assert!(merge_logs([]).is_empty());
        assert!(merge_traces(vec![]).is_empty());
    }
}
