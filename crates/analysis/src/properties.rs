//! Algorithm properties proven from the trace alone.
//!
//! The monitor's strongest claim is that the traces it collects are
//! enough to *study* a distributed program — not just to count its
//! messages but to check what the program is supposed to guarantee.
//! This module encodes two classic algorithms' correctness conditions
//! as checks over a [`Trace`]: Lamport's distributed mutual exclusion
//! (safety, total request order, message complexity) and synchronous
//! Byzantine agreement with oral messages (agreement, validity,
//! traitor identification, message complexity). Nothing here inspects
//! workload state; every verdict is computed from meter records —
//! send/receive lengths and socket names — via [`Pairing`] and
//! [`HappensBefore`].
//!
//! # The beacon convention
//!
//! The meter records a datagram's *length* and *addresses*, never its
//! payload (§3.2 meters calls, not data). So a workload that wants its
//! protocol steps to be visible in the trace encodes them in the one
//! payload-correlated field the meter keeps: the length. A datagram of
//! length `L` carries beacon kind `L / BEACON_SPAN` and payload
//! `L % BEACON_SPAN`; kinds 1–9 are defined below, anything else is
//! ordinary traffic the checkers ignore. Protocol events that have no
//! natural recipient (entering a critical section, deciding a value)
//! are *marker* datagrams sent to [`MARKER_PORT`] on the sender's own
//! machine — a port nothing binds, so the datagram vanishes exactly
//! like UDP to a dead port and only the metered send event remains.
//!
//! The convention is sound for order deduction because every payload
//! concurrently in flight on one (sender, destination) channel has a
//! distinct length — see the length-aware datagram matching notes in
//! [`crate::pairing`].

use crate::hb::HappensBefore;
use crate::pairing::Pairing;
use crate::trace::{EventKind, ProcKey, Trace};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Lengths `kind * BEACON_SPAN + payload` encode `(kind, payload)`;
/// the span keeps the largest beacon (`9 * 6000 + 5999`) under the
/// 64 KiB datagram limit.
pub const BEACON_SPAN: u32 = 6000;

/// Mutex: broadcast request for the critical section. Payload is the
/// request key `ts * 16 + id`.
pub const KIND_REQ: u32 = 1;
/// Mutex: reply to a request. Payload echoes the request key.
pub const KIND_REPLY: u32 = 2;
/// Mutex: broadcast release. Payload echoes the request key.
pub const KIND_RELEASE: u32 = 3;
/// Mutex marker: the sender entered its critical section. Payload is
/// the request key it entered under.
pub const KIND_CS_ENTER: u32 = 4;
/// Mutex marker: the sender left its critical section.
pub const KIND_CS_EXIT: u32 = 5;
/// Byzantine: commander's round-1 order. Payload is
/// `value * 16 + lieutenant_id` (the recipient).
pub const KIND_BYZ_R1: u32 = 6;
/// Byzantine: lieutenant's round-2 relay. Payload is
/// `value * 16 + relayer_id` (the sender).
pub const KIND_BYZ_R2: u32 = 7;
/// Byzantine marker: a lieutenant decided. Payload is
/// `value * 16 + id`.
pub const KIND_BYZ_DECIDE: u32 = 8;
/// Marker: a participant came up. Payload is its algorithm id —
/// guarantees every process has an id-bearing event even when faults
/// stall the protocol proper.
pub const KIND_HELLO: u32 = 9;

/// Mutex participant `i` binds `MUTEX_PORT + i`.
pub const MUTEX_PORT: u16 = 2100;
/// Byzantine general `i` binds `BYZ_PORT + i`.
pub const BYZ_PORT: u16 = 2200;
/// Marker datagrams go here on the sender's own machine; nothing
/// binds it, so only the send event exists.
pub const MARKER_PORT: u16 = 2300;

/// The wire length of a beacon datagram.
///
/// # Panics
///
/// If `payload >= BEACON_SPAN` or the kind is out of range — beacon
/// construction is a protocol bug, not an input condition.
pub fn beacon_len(kind: u32, payload: u32) -> u32 {
    assert!((KIND_REQ..=KIND_HELLO).contains(&kind), "bad kind {kind}");
    assert!(payload < BEACON_SPAN, "payload {payload} out of range");
    kind * BEACON_SPAN + payload
}

/// Decodes a datagram length back into `(kind, payload)`; `None` for
/// ordinary (non-beacon) traffic.
pub fn decode_beacon(len: u32) -> Option<(u32, u32)> {
    let kind = len / BEACON_SPAN;
    (KIND_REQ..=KIND_HELLO)
        .contains(&kind)
        .then_some((kind, len % BEACON_SPAN))
}

/// The `(host, port)` of an `inet:<host>:<port>` display name.
fn host_port(name: &str) -> Option<(u32, u16)> {
    let mut it = name.strip_prefix("inet:")?.split(':');
    let host = it.next()?.parse().ok()?;
    let port = it.next()?.parse().ok()?;
    Some((host, port))
}

/// One beacon send observed in the trace.
#[derive(Debug, Clone)]
struct Beacon {
    idx: usize,
    proc: ProcKey,
    kind: u32,
    payload: u32,
}

fn beacons(trace: &Trace) -> Vec<Beacon> {
    let mut out = Vec::new();
    for e in &trace.events {
        let EventKind::Send {
            len,
            dest: Some(name),
        } = &e.kind
        else {
            continue;
        };
        let (Some((kind, payload)), Some(_)) = (decode_beacon(*len), host_port(name)) else {
            continue;
        };
        out.push(Beacon {
            idx: e.idx,
            proc: e.proc,
            kind,
            payload,
        });
    }
    out
}

/// Whether a beacon kind is a protocol message (addressed to a peer)
/// rather than a marker (addressed to the dead port).
fn is_protocol(kind: u32) -> bool {
    matches!(
        kind,
        KIND_REQ | KIND_REPLY | KIND_RELEASE | KIND_BYZ_R1 | KIND_BYZ_R2
    )
}

// ---------------------------------------------------------------------
// Link-fault localization
// ---------------------------------------------------------------------

/// Faults the trace localizes to machine-to-machine links: protocol
/// beacons that were sent but never received (lost — a dead or
/// partitioned link), and beacon receives with no matching send
/// (duplicated deliveries).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LinkFaults {
    /// `(source machine, destination machine, count)` of lost protocol
    /// beacons, ascending.
    pub lost: Vec<(u32, u32, usize)>,
    /// `(source machine, destination machine, count)` of surplus
    /// (duplicated) protocol-beacon deliveries, ascending.
    pub duplicated: Vec<(u32, u32, usize)>,
}

impl LinkFaults {
    /// Collects link faults from the pairing's unmatched sends and
    /// receives, counting only protocol beacons (markers are sent to
    /// the dead port and are *supposed* to go unreceived).
    pub fn localize(trace: &Trace, pairing: &Pairing) -> LinkFaults {
        let mut lost: BTreeMap<(u32, u32), usize> = BTreeMap::new();
        for &i in &pairing.unmatched_sends {
            let EventKind::Send {
                len,
                dest: Some(name),
            } = &trace.events[i].kind
            else {
                continue;
            };
            let (Some((kind, _)), Some((host, _))) = (decode_beacon(*len), host_port(name)) else {
                continue;
            };
            if is_protocol(kind) {
                *lost
                    .entry((trace.events[i].proc.machine, host))
                    .or_default() += 1;
            }
        }
        let mut duplicated: BTreeMap<(u32, u32), usize> = BTreeMap::new();
        for &i in &pairing.unmatched_recvs {
            let EventKind::Recv {
                len,
                source: Some(name),
            } = &trace.events[i].kind
            else {
                continue;
            };
            let (Some((kind, _)), Some((host, _))) = (decode_beacon(*len), host_port(name)) else {
                continue;
            };
            if is_protocol(kind) {
                *duplicated
                    .entry((host, trace.events[i].proc.machine))
                    .or_default() += 1;
            }
        }
        LinkFaults {
            lost: lost.into_iter().map(|((a, b), n)| (a, b, n)).collect(),
            duplicated: duplicated
                .into_iter()
                .map(|((a, b), n)| (a, b, n))
                .collect(),
        }
    }

    /// No faults localized.
    pub fn is_clean(&self) -> bool {
        self.lost.is_empty() && self.duplicated.is_empty()
    }

    /// The machine pairs (unordered) any fault touches.
    pub fn links(&self) -> BTreeSet<(u32, u32)> {
        self.lost
            .iter()
            .chain(&self.duplicated)
            .map(|&(a, b, _)| if a <= b { (a, b) } else { (b, a) })
            .collect()
    }
}

impl fmt::Display for LinkFaults {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return writeln!(f, "link faults: none");
        }
        for (a, b, n) in &self.lost {
            writeln!(f, "link m{a}->m{b}: {n} protocol message(s) lost")?;
        }
        for (a, b, n) in &self.duplicated {
            writeln!(f, "link m{a}->m{b}: {n} duplicated delivery(ies)")?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Lamport mutual exclusion
// ---------------------------------------------------------------------

/// One observed critical-section interval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsInterval {
    /// The process that entered.
    pub proc: ProcKey,
    /// Its algorithm id (`key % 16`).
    pub id: u32,
    /// The request key `ts * 16 + id` — numeric order on keys is
    /// exactly Lamport's `(ts, id)` order.
    pub key: u32,
    /// Trace index of the CS-enter marker send.
    pub enter_idx: usize,
    /// Trace index of the CS-exit marker send, when observed.
    pub exit_idx: Option<usize>,
}

/// Verdict of the mutual-exclusion checker — every field computed
/// from the trace.
#[derive(Debug, Clone)]
pub struct MutexReport {
    /// Number of participants inferred from distinct ids observed.
    pub n: usize,
    /// Critical-section intervals in trace order.
    pub intervals: Vec<CsInterval>,
    /// Distinct request keys observed in REQ beacons.
    pub requests: usize,
    /// Pairs of interval indices the happens-before relation fails to
    /// order — mutual-exclusion violations.
    pub violations: Vec<(usize, usize)>,
    /// Interval keys in deduced entry order.
    pub entry_order: Vec<u32>,
    /// Whether entry order equals ascending key (= Lamport `(ts, id)`)
    /// order.
    pub order_ok: bool,
    /// Count of protocol sends (REQ + REPLY + RELEASE).
    pub protocol_sends: usize,
    /// Theoretical complexity: `3 (n-1)` per observed request.
    pub bound: usize,
    /// The happens-before graph contained a cycle (order evidence is
    /// then incomplete, and the verdicts untrustworthy).
    pub has_cycle: bool,
    /// Faults localized to links.
    pub faults: LinkFaults,
}

impl MutexReport {
    /// Mutual exclusion held over every observed interval pair.
    pub fn mutual_exclusion_ok(&self) -> bool {
        self.violations.is_empty() && !self.has_cycle
    }

    /// Message complexity within the theoretical bound.
    pub fn within_bound(&self) -> bool {
        self.protocol_sends <= self.bound
    }

    /// Checks Lamport-mutex properties over a trace.
    pub fn check(trace: &Trace) -> MutexReport {
        let pairing = Pairing::analyze(trace);
        let hb = HappensBefore::build(trace, &pairing);
        let bs = beacons(trace);

        // Participants: every id seen in a HELLO or REQ beacon.
        let mut ids: BTreeSet<u32> = BTreeSet::new();
        for b in &bs {
            match b.kind {
                KIND_HELLO => {
                    ids.insert(b.payload % 16);
                }
                KIND_REQ => {
                    ids.insert(b.payload % 16);
                }
                _ => {}
            }
        }
        let n = ids.len();

        // Intervals: pair each process's ENTER with its next EXIT of
        // the same key, in program (= per-process trace) order.
        let mut intervals: Vec<CsInterval> = Vec::new();
        for b in &bs {
            match b.kind {
                KIND_CS_ENTER => intervals.push(CsInterval {
                    proc: b.proc,
                    id: b.payload % 16,
                    key: b.payload,
                    enter_idx: b.idx,
                    exit_idx: None,
                }),
                KIND_CS_EXIT => {
                    if let Some(iv) = intervals.iter_mut().find(|iv| {
                        iv.proc == b.proc && iv.key == b.payload && iv.exit_idx.is_none()
                    }) {
                        iv.exit_idx = Some(b.idx);
                    }
                }
                _ => {}
            }
        }

        // Safety: every pair of intervals on different processes must
        // be ordered — one's exit happens-before the other's enter.
        // The ordering evidence is indirect: EXIT precedes the RELEASE
        // broadcast in program order, the RELEASE's receipt precedes
        // the next entrant's ENTER, and `hb` chains them.
        let exit_precedes = |a: &CsInterval, b: &CsInterval| match a.exit_idx {
            Some(x) => hb.precedes(x, b.enter_idx),
            None => false,
        };
        let mut violations = Vec::new();
        for i in 0..intervals.len() {
            for j in (i + 1)..intervals.len() {
                let (a, b) = (&intervals[i], &intervals[j]);
                if a.proc != b.proc && !exit_precedes(a, b) && !exit_precedes(b, a) {
                    violations.push((i, j));
                }
            }
        }

        // Liveness-order: sort intervals by the deduced entry order
        // (count of intervals that precede each one — a total order
        // whenever mutual exclusion holds) and compare with key order.
        let mut order: Vec<usize> = (0..intervals.len()).collect();
        order.sort_by_key(|&i| {
            let before = intervals
                .iter()
                .filter(|o| exit_precedes(o, &intervals[i]))
                .count();
            (before, intervals[i].enter_idx)
        });
        let entry_order: Vec<u32> = order.iter().map(|&i| intervals[i].key).collect();
        let order_ok = entry_order.windows(2).all(|w| w[0] < w[1]);

        let requests = bs
            .iter()
            .filter(|b| b.kind == KIND_REQ)
            .map(|b| b.payload)
            .collect::<BTreeSet<_>>()
            .len();
        let protocol_sends = bs
            .iter()
            .filter(|b| matches!(b.kind, KIND_REQ | KIND_REPLY | KIND_RELEASE))
            .count();
        let bound = 3 * n.saturating_sub(1) * requests;

        MutexReport {
            n,
            requests,
            violations,
            entry_order,
            order_ok,
            protocol_sends,
            bound,
            has_cycle: hb.has_cycle(),
            faults: LinkFaults::localize(trace, &pairing),
            intervals,
        }
    }
}

impl fmt::Display for MutexReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "lamport mutex: {} participants, {} requests, {} CS entries",
            self.n,
            self.requests,
            self.intervals.len()
        )?;
        writeln!(
            f,
            "mutual exclusion: {}",
            if self.mutual_exclusion_ok() {
                "OK".to_owned()
            } else {
                format!("VIOLATED ({} unordered pairs)", self.violations.len())
            }
        )?;
        writeln!(
            f,
            "total request order: {}",
            if self.order_ok { "OK" } else { "VIOLATED" }
        )?;
        writeln!(
            f,
            "messages: {} of bound {} ({})",
            self.protocol_sends,
            self.bound,
            if self.within_bound() {
                "within bound"
            } else {
                "EXCEEDED"
            }
        )?;
        if self.has_cycle {
            writeln!(
                f,
                "WARNING: happens-before cycle; order evidence incomplete"
            )?;
        }
        write!(f, "{}", self.faults)
    }
}

// ---------------------------------------------------------------------
// Byzantine agreement (oral messages, one round of relays)
// ---------------------------------------------------------------------

/// Verdict of the Byzantine-agreement checker — every field computed
/// from the trace.
#[derive(Debug, Clone)]
pub struct ByzReport {
    /// Number of generals (commander + lieutenants) inferred from
    /// HELLO beacons.
    pub n: usize,
    /// Values the commander sent in round 1, per lieutenant id.
    pub orders: BTreeMap<u32, u32>,
    /// Values each lieutenant relayed in round 2, per relayer id (the
    /// set of distinct values it told different peers).
    pub relays: BTreeMap<u32, BTreeSet<u32>>,
    /// Decisions observed in DECIDE markers, per lieutenant id.
    pub decisions: BTreeMap<u32, u32>,
    /// Ids whose *behavior in the trace* is disloyal: a commander that
    /// sent different round-1 values, or a lieutenant whose relays
    /// disagree with each other or with the order it received.
    pub suspected: Vec<u32>,
    /// Round-1 message count (bound: `n - 1`).
    pub r1_sends: usize,
    /// Round-2 message count (bound: `(n - 1)(n - 2)`).
    pub r2_sends: usize,
    /// The happens-before graph contained a cycle.
    pub has_cycle: bool,
    /// Faults localized to links.
    pub faults: LinkFaults,
}

impl ByzReport {
    /// Checks oral-messages agreement properties over a trace.
    pub fn check(trace: &Trace) -> ByzReport {
        let pairing = Pairing::analyze(trace);
        let hb = HappensBefore::build(trace, &pairing);
        let bs = beacons(trace);

        let mut ids: BTreeSet<u32> = BTreeSet::new();
        let mut orders = BTreeMap::new();
        let mut relays: BTreeMap<u32, BTreeSet<u32>> = BTreeMap::new();
        let mut decisions = BTreeMap::new();
        let (mut r1_sends, mut r2_sends) = (0usize, 0usize);
        for b in &bs {
            match b.kind {
                KIND_HELLO => {
                    ids.insert(b.payload % 16);
                }
                KIND_BYZ_R1 => {
                    r1_sends += 1;
                    orders.insert(b.payload % 16, b.payload / 16);
                }
                KIND_BYZ_R2 => {
                    r2_sends += 1;
                    relays
                        .entry(b.payload % 16)
                        .or_default()
                        .insert(b.payload / 16);
                }
                KIND_BYZ_DECIDE => {
                    decisions.insert(b.payload % 16, b.payload / 16);
                }
                _ => {}
            }
        }
        let n = ids.len();

        // Behavioral loyalty, judged from the trace: the commander is
        // two-faced iff its round-1 orders differ; a lieutenant is
        // two-faced iff it relayed inconsistent values, or a value
        // different from the order the commander demonstrably sent it.
        let commander_values: BTreeSet<u32> = orders.values().copied().collect();
        let mut suspected = Vec::new();
        if commander_values.len() > 1 {
            suspected.push(0);
        }
        for (&id, vals) in &relays {
            let lied_sideways = vals.len() > 1;
            let lied_about_order = commander_values.len() == 1
                && orders.get(&id).is_some_and(|o| vals.iter().any(|v| v != o));
            if lied_sideways || lied_about_order {
                suspected.push(id);
            }
        }
        suspected.sort_unstable();
        suspected.dedup();

        ByzReport {
            n,
            orders,
            relays,
            decisions,
            suspected,
            r1_sends,
            r2_sends,
            has_cycle: hb.has_cycle(),
            faults: LinkFaults::localize(trace, &pairing),
        }
    }

    /// Lieutenant ids not suspected of treachery (the commander, id 0,
    /// does not decide and is excluded).
    pub fn loyal_lieutenants(&self) -> Vec<u32> {
        self.decisions
            .keys()
            .copied()
            .filter(|id| !self.suspected.contains(id))
            .collect()
    }

    /// IC1 — agreement: every behaviorally-loyal lieutenant decided,
    /// and they all decided the same value.
    pub fn agreement_ok(&self) -> bool {
        let vals: BTreeSet<u32> = self
            .loyal_lieutenants()
            .iter()
            .filter_map(|id| self.decisions.get(id).copied())
            .collect();
        vals.len() == 1 && !self.has_cycle
    }

    /// IC2 — validity: when the commander behaved loyally (sent one
    /// value), the loyal lieutenants decided that value. Vacuously
    /// true for a treacherous commander.
    pub fn validity_ok(&self) -> bool {
        let commander_values: BTreeSet<u32> = self.orders.values().copied().collect();
        if self.suspected.contains(&0) || commander_values.len() != 1 {
            return true;
        }
        let v = *commander_values.iter().next().expect("one value");
        self.loyal_lieutenants()
            .iter()
            .all(|id| self.decisions.get(id) == Some(&v))
    }

    /// Message complexity within the oral-messages bound.
    pub fn within_bound(&self) -> bool {
        self.r1_sends <= self.n.saturating_sub(1)
            && self.r2_sends <= self.n.saturating_sub(1) * self.n.saturating_sub(2)
    }
}

impl fmt::Display for ByzReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "byzantine agreement: {} generals, {} decisions",
            self.n,
            self.decisions.len()
        )?;
        writeln!(
            f,
            "agreement: {}   validity: {}",
            if self.agreement_ok() {
                "OK"
            } else {
                "VIOLATED"
            },
            if self.validity_ok() { "OK" } else { "VIOLATED" },
        )?;
        match self.suspected.as_slice() {
            [] => writeln!(f, "traitors: none detected")?,
            ids => {
                let names: Vec<String> = ids
                    .iter()
                    .map(|&i| {
                        if i == 0 {
                            "commander".to_owned()
                        } else {
                            format!("lieutenant {i}")
                        }
                    })
                    .collect();
                writeln!(f, "traitors detected from trace: {}", names.join(", "))?;
            }
        }
        writeln!(
            f,
            "messages: round1 {}/{}  round2 {}/{} ({})",
            self.r1_sends,
            self.n.saturating_sub(1),
            self.r2_sends,
            self.n.saturating_sub(1) * self.n.saturating_sub(2),
            if self.within_bound() {
                "within bound"
            } else {
                "EXCEEDED"
            }
        )?;
        if self.has_cycle {
            writeln!(
                f,
                "WARNING: happens-before cycle; order evidence incomplete"
            )?;
        }
        write!(f, "{}", self.faults)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn send(machine: u32, pid: u32, cpu: u32, len: u32, dest: &str) -> String {
        format!(
            "event=send machine={machine} cpuTime={cpu} procTime=0 traceType=1 pid={pid} pc=1 sock=3 msgLength={len} destName={dest}\n"
        )
    }

    fn recv(machine: u32, pid: u32, cpu: u32, len: u32, source: &str) -> String {
        format!(
            "event=receive machine={machine} cpuTime={cpu} procTime=0 traceType=3 pid={pid} pc=1 sock=3 msgLength={len} sourceName={source}\n"
        )
    }

    #[test]
    fn beacon_roundtrip() {
        for kind in KIND_REQ..=KIND_HELLO {
            for payload in [0, 1, 17, BEACON_SPAN - 1] {
                assert_eq!(
                    decode_beacon(beacon_len(kind, payload)),
                    Some((kind, payload))
                );
            }
        }
        assert_eq!(decode_beacon(100), None, "plain traffic is not a beacon");
        assert_eq!(decode_beacon(10 * BEACON_SPAN), None, "kind out of range");
    }

    /// A hand-written two-node mutex trace: node 0 (m0) and node 1
    /// (m1) each enter once, in key order, with the release chain
    /// giving the cross-machine ordering evidence.
    fn two_node_mutex_trace() -> Trace {
        let k0 = 16; // ts=1, id=0
        let k1 = 33; // ts=2, id=1
        let p0 = format!("inet:0:{}", MUTEX_PORT);
        let p1 = format!("inet:1:{}", MUTEX_PORT + 1);
        let marker0 = format!("inet:0:{MARKER_PORT}");
        let marker1 = format!("inet:1:{MARKER_PORT}");
        let mut log = String::new();
        // Hellos.
        log += &send(0, 10, 1, beacon_len(KIND_HELLO, 0), &marker0);
        log += &send(1, 20, 1, beacon_len(KIND_HELLO, 1), &marker1);
        // Requests cross; both reply.
        log += &send(0, 10, 2, beacon_len(KIND_REQ, k0), &p1);
        log += &send(1, 20, 2, beacon_len(KIND_REQ, k1), &p0);
        log += &recv(1, 20, 3, beacon_len(KIND_REQ, k0), &p0);
        log += &recv(0, 10, 3, beacon_len(KIND_REQ, k1), &p1);
        log += &send(1, 20, 4, beacon_len(KIND_REPLY, k0), &p0);
        log += &send(0, 10, 4, beacon_len(KIND_REPLY, k1), &p1);
        log += &recv(0, 10, 5, beacon_len(KIND_REPLY, k0), &p1);
        log += &recv(1, 20, 5, beacon_len(KIND_REPLY, k1), &p0);
        // Node 0 wins (smaller key): enter, exit, release.
        log += &send(0, 10, 6, beacon_len(KIND_CS_ENTER, k0), &marker0);
        log += &send(0, 10, 7, beacon_len(KIND_CS_EXIT, k0), &marker0);
        log += &send(0, 10, 8, beacon_len(KIND_RELEASE, k0), &p1);
        log += &recv(1, 20, 6, beacon_len(KIND_RELEASE, k0), &p0);
        // Node 1 enters after the release.
        log += &send(1, 20, 7, beacon_len(KIND_CS_ENTER, k1), &marker1);
        log += &send(1, 20, 8, beacon_len(KIND_CS_EXIT, k1), &marker1);
        log += &send(1, 20, 9, beacon_len(KIND_RELEASE, k1), &p0);
        log += &recv(0, 10, 9, beacon_len(KIND_RELEASE, k1), &p1);
        Trace::parse(&log)
    }

    #[test]
    fn mutex_checker_passes_a_clean_trace() {
        let r = MutexReport::check(&two_node_mutex_trace());
        assert_eq!(r.n, 2);
        assert_eq!(r.requests, 2);
        assert_eq!(r.intervals.len(), 2);
        assert!(r.mutual_exclusion_ok(), "{r}");
        assert!(r.order_ok, "{r}");
        assert_eq!(r.entry_order, vec![16, 33]);
        assert_eq!(r.protocol_sends, 6);
        assert_eq!(r.bound, 6);
        assert!(r.within_bound());
        assert!(r.faults.is_clean());
    }

    #[test]
    fn mutex_checker_catches_overlapping_sections() {
        // Drop the release chain: node 1 enters with no ordering
        // evidence against node 0's interval.
        let t = two_node_mutex_trace();
        let mut log = String::new();
        for e in &t.events {
            let keep = match &e.kind {
                EventKind::Send { len, .. } | EventKind::Recv { len, .. } => {
                    decode_beacon(*len).map(|(k, _)| k) != Some(KIND_RELEASE)
                }
                _ => true,
            };
            if keep {
                let (verb, len, name) = match &e.kind {
                    EventKind::Send { len, dest } => ("send", len, dest.clone().unwrap()),
                    EventKind::Recv { len, source } => ("receive", len, source.clone().unwrap()),
                    _ => unreachable!(),
                };
                let field = if verb == "send" {
                    "destName"
                } else {
                    "sourceName"
                };
                log += &format!(
                    "event={verb} machine={} cpuTime={} procTime=0 traceType=1 pid={} pc=1 sock=3 msgLength={len} {field}={name}\n",
                    e.proc.machine, e.cpu_time, e.proc.pid
                );
            }
        }
        let r = MutexReport::check(&Trace::parse(&log));
        assert!(!r.mutual_exclusion_ok(), "{r}");
        assert_eq!(r.violations.len(), 1);
    }

    #[test]
    fn mutex_checker_localizes_a_lost_request() {
        // Node 0's REQ to node 1 vanishes (no receive on m1).
        let k0 = 16;
        let p1 = format!("inet:1:{}", MUTEX_PORT + 1);
        let log = send(0, 10, 2, beacon_len(KIND_REQ, k0), &p1);
        let r = MutexReport::check(&Trace::parse(&log));
        assert_eq!(r.faults.lost, vec![(0, 1, 1)]);
        assert_eq!(
            r.faults.links().into_iter().collect::<Vec<_>>(),
            vec![(0, 1)]
        );
    }

    /// A clean n=4 oral-messages round: loyal commander orders v=1,
    /// loyal lieutenants relay and decide 1.
    fn byz_trace(traitor: Option<u32>) -> Trace {
        let v = 1u32;
        let port = |i: u32| BYZ_PORT as u32 + i;
        let addr = |i: u32| format!("inet:{i}:{}", port(i));
        let marker = |i: u32| format!("inet:{i}:{MARKER_PORT}");
        let mut log = String::new();
        for i in 0..4 {
            log += &send(i, 10 + i, 1, beacon_len(KIND_HELLO, i), &marker(i));
        }
        // Round 1.
        for j in 1..4u32 {
            let vj = if traitor == Some(0) { (v + j) % 2 } else { v };
            log += &send(0, 10, 2, beacon_len(KIND_BYZ_R1, vj * 16 + j), &addr(j));
            log += &recv(j, 10 + j, 2, beacon_len(KIND_BYZ_R1, vj * 16 + j), &addr(0));
        }
        // Round 2.
        for i in 1..4u32 {
            let got = if traitor == Some(0) { (v + i) % 2 } else { v };
            let relay = if traitor == Some(i) { 1 - got } else { got };
            for j in 1..4u32 {
                if j == i {
                    continue;
                }
                log += &send(
                    i,
                    10 + i,
                    3,
                    beacon_len(KIND_BYZ_R2, relay * 16 + i),
                    &addr(j),
                );
                log += &recv(
                    j,
                    10 + j,
                    3,
                    beacon_len(KIND_BYZ_R2, relay * 16 + i),
                    &addr(i),
                );
            }
        }
        // Decisions: majority of (own order, relays).
        for i in 1..4u32 {
            let mut vals = Vec::new();
            let got = if traitor == Some(0) { (v + i) % 2 } else { v };
            vals.push(got);
            for k in 1..4u32 {
                if k == i {
                    continue;
                }
                let got_k = if traitor == Some(0) { (v + k) % 2 } else { v };
                vals.push(if traitor == Some(k) { 1 - got_k } else { got_k });
            }
            let ones = vals.iter().filter(|&&x| x == 1).count();
            let decide = u32::from(ones * 2 >= vals.len());
            log += &send(
                i,
                10 + i,
                4,
                beacon_len(KIND_BYZ_DECIDE, decide * 16 + i),
                &marker(i),
            );
        }
        Trace::parse(&log)
    }

    #[test]
    fn byzantine_checker_passes_all_loyal() {
        let r = ByzReport::check(&byz_trace(None));
        assert_eq!(r.n, 4);
        assert!(r.suspected.is_empty(), "{r}");
        assert!(r.agreement_ok(), "{r}");
        assert!(r.validity_ok(), "{r}");
        assert!(r.within_bound());
        assert_eq!(r.r1_sends, 3);
        assert_eq!(r.r2_sends, 6);
    }

    #[test]
    fn byzantine_checker_names_a_two_faced_commander() {
        let r = ByzReport::check(&byz_trace(Some(0)));
        assert_eq!(r.suspected, vec![0], "{r}");
        assert!(r.agreement_ok(), "loyal lieutenants still agree: {r}");
        assert!(r.validity_ok(), "vacuous for a traitor commander: {r}");
    }

    #[test]
    fn byzantine_checker_names_a_lying_lieutenant() {
        let r = ByzReport::check(&byz_trace(Some(2)));
        assert_eq!(r.suspected, vec![2], "{r}");
        assert!(r.agreement_ok(), "{r}");
        assert!(r.validity_ok(), "{r}");
    }
}
