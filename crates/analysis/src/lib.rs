//! Analysis routines for the distributed programs monitor.
//!
//! "The analysis routines provide the means for interpreting the
//! traces created by filters. They give meaning to the data by
//! summarizing and operating on the event records collected. The user
//! produces his own analysis routines according to the purpose of the
//! study. … These analyses include communications statistics,
//! measurement of parallelism, and structural studies." (§3.3)
//!
//! The modules implement, over the filter's trace logs:
//!
//! * [`Trace`] — typed events parsed back out of log records;
//! * [`Pairing`] — connection pairing and send↔receive message
//!   matching, recovering recipients the meter could not name (§4.1);
//! * [`HappensBefore`] — the deducible partial global order (Lamport),
//!   with clock-skew evidence extraction;
//! * [`CommStats`] — communication statistics and clock-offset
//!   estimation between machines;
//! * [`ParallelismReport`] — busy-time profile and effective speedup;
//! * [`StructureReport`] — the process/communication graph with DOT
//!   output.
//!
//! # Example
//!
//! ```
//! use dpm_analysis::{Analysis, Trace};
//!
//! let log = "\
//! event=send machine=0 cpuTime=10 procTime=0 traceType=1 pid=1 pc=1 sock=1 msgLength=64 destName=inet:1:53
//! event=receive machine=1 cpuTime=15 procTime=0 traceType=3 pid=2 pc=1 sock=2 msgLength=64 sourceName=inet:0:1024
//! ";
//! let a = Analysis::of_log(log);
//! assert_eq!(a.pairing.messages.len(), 1);
//! assert!(a.hb.precedes(0, 1));
//! assert_eq!(a.stats.matched, 1);
//! ```

#![warn(missing_docs)]

pub mod critical;
pub mod debugging;
pub mod hb;
pub mod merge;
pub mod pairing;
pub mod parallelism;
pub mod properties;
pub mod stats;
pub mod structure;
pub mod timeline;
pub mod trace;

pub use critical::{CriticalPath, PathStep};
pub use debugging::{BlockedReceive, DebugReport, Unterminated};
pub use hb::HappensBefore;
pub use merge::{merge_logs, merge_traces};
pub use pairing::{host_of, Connection, MatchedMessage, PairQueues, Pairing};
pub use parallelism::{BusySlice, ParallelismReport};
pub use properties::{ByzReport, CsInterval, LinkFaults, MutexReport};
pub use stats::{CommStats, OffsetEstimate, ProcStats, SizeHistogram};
pub use structure::{CommEdge, StructureReport};
pub use timeline::{Bucket, Timeline};
pub use trace::{Event, EventKind, ProcKey, Trace};

/// Runs every analysis over one trace log — the convenient all-in-one
/// entry point used by the examples.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// The typed trace.
    pub trace: Trace,
    /// Connection pairing and message matching.
    pub pairing: Pairing,
    /// Happens-before relation.
    pub hb: HappensBefore,
    /// Communication statistics.
    pub stats: CommStats,
    /// Parallelism profile.
    pub parallelism: ParallelismReport,
    /// Structural report.
    pub structure: StructureReport,
    /// Debugging report: blocked receives, lost sends, hangs.
    pub debug: DebugReport,
    /// Critical path: the heaviest work chain (the IPS extension).
    pub critical: CriticalPath,
}

impl Analysis {
    /// Analyzes a filter log's text.
    pub fn of_log(log_text: &str) -> Analysis {
        Analysis::of_trace(Trace::parse(log_text))
    }

    /// Analyzes an already-parsed trace.
    pub fn of_trace(trace: Trace) -> Analysis {
        let pairing = Pairing::analyze(&trace);
        let hb = HappensBefore::build(&trace, &pairing);
        let stats = CommStats::analyze(&trace, &pairing);
        let parallelism = ParallelismReport::analyze(&trace);
        let structure = StructureReport::analyze(&trace, &pairing);
        let debug = DebugReport::analyze(&trace, &pairing);
        let critical = CriticalPath::analyze(&trace, &pairing, &hb);
        Analysis {
            trace,
            pairing,
            hb,
            stats,
            parallelism,
            structure,
            debug,
            critical,
        }
    }

    /// A one-screen human summary, used by the example binaries.
    pub fn summary(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "trace: {} events, {} processes on {} machines\n",
            self.trace.len(),
            self.structure.processes.len(),
            self.trace.machines().len()
        ));
        s.push_str(&self.stats.to_string());
        s.push_str(&self.parallelism.to_string());
        s.push_str(&format!(
            "deducible global order: {:.0}% of event pairs\n",
            self.hb.ordered_fraction() * 100.0
        ));
        if !self.pairing.unmatched_sends.is_empty() {
            s.push_str(&format!(
                "{} sends never received (lost datagrams or unread bytes)\n",
                self.pairing.unmatched_sends.len()
            ));
        }
        if !self.debug.is_clean() {
            s.push_str(&self.debug.to_string());
        }
        if self.critical.total_work_ms > 0 {
            s.push_str(&self.critical.to_string());
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_in_one_runs_on_empty_input() {
        let a = Analysis::of_log("");
        assert!(a.trace.is_empty());
        assert!(a.summary().contains("0 events"));
    }

    #[test]
    fn summary_mentions_losses() {
        let a = Analysis::of_log(
            "event=send machine=0 cpuTime=1 procTime=0 traceType=1 pid=1 pc=1 sock=1 msgLength=9 destName=inet:1:5\n",
        );
        assert!(a.summary().contains("never received"));
    }
}
