//! Critical-path analysis — the extension the paper's lineage points
//! at.
//!
//! Miller's follow-up to this monitor (IPS, 1988) turned its traces
//! into *critical paths*: the longest chain of work through the
//! happens-before graph, which bounds the computation's elapsed time
//! and names the processes worth optimizing. This module implements
//! that analysis over the same traces.
//!
//! Edge weights use only information that is sound without
//! synchronized clocks: a program-order edge between two events of one
//! process weighs its `procTime` delta (CPU actually charged between
//! them); message edges weigh zero (their true latency is not
//! deducible from skewed stamps). The critical path is therefore the
//! heaviest *work* chain, a lower bound on elapsed time.

use crate::hb::HappensBefore;
use crate::pairing::Pairing;
use crate::trace::{ProcKey, Trace};
use std::collections::HashMap;
use std::fmt;

/// One step of the critical path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathStep {
    /// Trace index of the event ending this step.
    pub idx: usize,
    /// The process that did the work.
    pub proc: ProcKey,
    /// CPU ms charged on the incoming program-order edge (0 for the
    /// first event of a process or a message hop).
    pub work_ms: u32,
}

/// The critical path of a computation.
#[derive(Debug, Clone, Default)]
pub struct CriticalPath {
    /// The path, source to sink.
    pub steps: Vec<PathStep>,
    /// Total CPU ms along the path.
    pub total_work_ms: u64,
    /// CPU ms along the path attributed to each process.
    pub work_per_proc: HashMap<ProcKey, u64>,
}

impl CriticalPath {
    /// Computes the heaviest work chain through the happens-before
    /// graph.
    pub fn analyze(trace: &Trace, pairing: &Pairing, hb: &HappensBefore) -> CriticalPath {
        let n = trace.events.len();
        if n == 0 {
            return CriticalPath::default();
        }
        // Weight of the program-order edge *into* each event: the
        // procTime delta from its process predecessor.
        let mut prev_proc_time: HashMap<ProcKey, u32> = HashMap::new();
        let mut in_work = vec![0u32; n];
        for (i, e) in trace.events.iter().enumerate() {
            let prev = prev_proc_time.get(&e.proc).copied().unwrap_or(0);
            in_work[i] = e.proc_time.saturating_sub(prev);
            prev_proc_time.insert(e.proc, e.proc_time.max(prev));
        }
        let _ = pairing; // edges already folded into `hb`

        // Longest path over the DAG: process in a topological order.
        // Trace order is topological for program edges; message edges
        // may point backwards in trace order, so do a Kahn pass using
        // hb's successor lists.
        let mut indeg = vec![0usize; n];
        for i in 0..n {
            for &s in hb.successors(i) {
                indeg[s] += 1;
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut dist = vec![0u64; n];
        let mut pred: Vec<Option<usize>> = vec![None; n];
        while let Some(i) = queue.pop() {
            for &s in hb.successors(i) {
                let cand = dist[i] + in_work[s] as u64;
                if cand > dist[s] || (cand == dist[s] && pred[s].is_none()) {
                    dist[s] = cand;
                    pred[s] = Some(i);
                }
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    queue.push(s);
                }
            }
        }
        // Also count each source's own first-edge work (in_work of a
        // source is its procTime at first event; usually 0).
        let sink = (0..n).max_by_key(|&i| dist[i]).expect("nonempty");
        let mut chain = Vec::new();
        let mut cur = Some(sink);
        while let Some(i) = cur {
            chain.push(i);
            cur = pred[i];
        }
        chain.reverse();
        let mut steps = Vec::with_capacity(chain.len());
        let mut work_per_proc: HashMap<ProcKey, u64> = HashMap::new();
        let mut total = 0u64;
        for (pos, &i) in chain.iter().enumerate() {
            let e = &trace.events[i];
            // Work counts only along program-order edges of the chain.
            let work = if pos > 0 && trace.events[chain[pos - 1]].proc == e.proc {
                in_work[i]
            } else {
                0
            };
            total += work as u64;
            *work_per_proc.entry(e.proc).or_default() += work as u64;
            steps.push(PathStep {
                idx: i,
                proc: e.proc,
                work_ms: work,
            });
        }
        CriticalPath {
            steps,
            total_work_ms: total,
            work_per_proc,
        }
    }

    /// The process carrying the most critical-path work — the first
    /// place to optimize.
    pub fn dominant_process(&self) -> Option<(ProcKey, u64)> {
        self.work_per_proc
            .iter()
            .max_by_key(|(p, w)| (**w, std::cmp::Reverse(*p)))
            .map(|(p, w)| (*p, *w))
    }

    /// Number of cross-process hops on the path.
    pub fn hops(&self) -> usize {
        self.steps
            .windows(2)
            .filter(|w| w[0].proc != w[1].proc)
            .count()
    }
}

impl fmt::Display for CriticalPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "critical path: {} ms of work over {} events, {} cross-process hops",
            self.total_work_ms,
            self.steps.len(),
            self.hops()
        )?;
        if let Some((p, w)) = self.dominant_process() {
            writeln!(f, "dominant process: {p} with {w} ms on the path")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Trace;

    /// p1 does 30 ms then sends; p2 receives then does 50 ms. The
    /// critical path is the 80 ms chain through both.
    const CHAIN: &str = "\
event=socket machine=0 cpuTime=0 procTime=0 traceType=4 pid=1 pc=1 sock=1 domain=2 type=2 protocol=0
event=send machine=0 cpuTime=30 procTime=30 traceType=1 pid=1 pc=2 sock=1 msgLength=8 destName=inet:1:9
event=receive machine=1 cpuTime=5 procTime=0 traceType=3 pid=2 pc=1 sock=2 msgLength=8 sourceName=inet:0:1024
event=termproc machine=1 cpuTime=55 procTime=50 traceType=10 pid=2 pc=2 reason=0
";

    /// Two independent processes: 30 ms and 50 ms. The critical path
    /// is the heavier one alone.
    const INDEP: &str = "\
event=socket machine=0 cpuTime=0 procTime=0 traceType=4 pid=1 pc=1 sock=1 domain=2 type=2 protocol=0
event=termproc machine=0 cpuTime=30 procTime=30 traceType=10 pid=1 pc=2 reason=0
event=socket machine=1 cpuTime=0 procTime=0 traceType=4 pid=2 pc=1 sock=1 domain=2 type=2 protocol=0
event=termproc machine=1 cpuTime=50 procTime=50 traceType=10 pid=2 pc=2 reason=0
";

    fn build(log: &str) -> (Trace, CriticalPath) {
        let t = Trace::parse(log);
        let p = Pairing::analyze(&t);
        let hb = HappensBefore::build(&t, &p);
        let cp = CriticalPath::analyze(&t, &p, &hb);
        (t, cp)
    }

    #[test]
    fn chain_accumulates_both_processes() {
        let (_t, cp) = build(CHAIN);
        assert_eq!(cp.total_work_ms, 80, "30 + 50 along the causal chain");
        assert_eq!(cp.hops(), 1, "one message hop");
        assert_eq!(cp.work_per_proc[&ProcKey { machine: 0, pid: 1 }], 30);
        assert_eq!(cp.work_per_proc[&ProcKey { machine: 1, pid: 2 }], 50);
        let (dom, w) = cp.dominant_process().unwrap();
        assert_eq!((dom.pid, w), (2, 50));
    }

    #[test]
    fn independent_work_takes_the_heavier_branch() {
        let (_t, cp) = build(INDEP);
        assert_eq!(cp.total_work_ms, 50, "only the heavier process");
        assert_eq!(cp.hops(), 0);
        assert_eq!(cp.dominant_process().unwrap().0.pid, 2);
    }

    #[test]
    fn empty_trace_yields_empty_path() {
        let (_t, cp) = build("");
        assert!(cp.steps.is_empty());
        assert_eq!(cp.total_work_ms, 0);
        assert!(cp.dominant_process().is_none());
    }

    #[test]
    fn display_summarizes() {
        let (_t, cp) = build(CHAIN);
        let s = cp.to_string();
        assert!(s.contains("80 ms of work"), "{s}");
        assert!(s.contains("dominant process"), "{s}");
    }
}
