//! Communication statistics.
//!
//! One of the analyses the paper reports using the tools for
//! ("communications statistics", §3.3): message and byte counts per
//! process and per process pair, plus clock-offset estimates between
//! machine pairs derived from matched messages — the trace-only
//! equivalent of what TEMPO (cited in §1.1) measures on the wire.

use crate::pairing::Pairing;
use crate::trace::{EventKind, ProcKey, Trace};
use std::collections::HashMap;
use std::fmt;

/// A power-of-two histogram of message sizes — the classic first
/// figure of any communication study. Bucket 0 counts messages of 0
/// or 1 bytes; bucket `i > 0` counts `2^(i-1) < len <= 2^i`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SizeHistogram {
    /// Counts per power-of-two bucket.
    pub buckets: Vec<u64>,
    /// Total messages counted.
    pub total: u64,
}

impl SizeHistogram {
    /// Builds the histogram over all send events of a trace.
    pub fn of_sends(trace: &Trace) -> SizeHistogram {
        let mut h = SizeHistogram::default();
        for e in &trace.events {
            if let EventKind::Send { len, .. } = e.kind {
                h.add(len);
            }
        }
        h
    }

    /// Adds one message of `len` bytes.
    pub fn add(&mut self, len: u32) {
        let bucket = if len <= 1 {
            0
        } else {
            (32 - (len - 1).leading_zeros()) as usize
        };
        if self.buckets.len() <= bucket {
            self.buckets.resize(bucket + 1, 0);
        }
        self.buckets[bucket] += 1;
        self.total += 1;
    }

    /// The bucket's inclusive byte range, for labelling.
    pub fn range(i: usize) -> (u64, u64) {
        if i == 0 {
            (0, 1)
        } else {
            (1u64 << (i - 1), (1u64 << i) - 1 + 1)
        }
    }
}

impl fmt::Display for SizeHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let peak = self.buckets.iter().copied().max().unwrap_or(1).max(1);
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let (lo, hi) = SizeHistogram::range(i);
            let width = ((n * 30).div_ceil(peak)) as usize;
            writeln!(f, "{:>7}-{:<7} |{:<30}| {}", lo, hi, "#".repeat(width), n)?;
        }
        writeln!(f, "{} messages", self.total)
    }
}

/// Per-process communication counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProcStats {
    /// Send events.
    pub sends: u64,
    /// Bytes sent.
    pub bytes_sent: u64,
    /// Receive events (completed).
    pub recvs: u64,
    /// Bytes received.
    pub bytes_recv: u64,
    /// Receive calls (including those that blocked).
    pub recv_calls: u64,
    /// Sockets created.
    pub sockets: u64,
    /// Connections initiated.
    pub connects: u64,
    /// Connections accepted.
    pub accepts: u64,
    /// Final CPU time charged (ms, 10 ms granularity).
    pub cpu_ms: u32,
}

impl ProcStats {
    /// Folds one event of this process into the counters — the
    /// per-event primitive both the batch sweep in
    /// [`CommStats::analyze`] and live incremental consumers use.
    pub fn record(&mut self, e: &crate::trace::Event) {
        self.cpu_ms = self.cpu_ms.max(e.proc_time);
        match &e.kind {
            EventKind::Send { len, .. } => {
                self.sends += 1;
                self.bytes_sent += *len as u64;
            }
            EventKind::Recv { len, .. } => {
                self.recvs += 1;
                self.bytes_recv += *len as u64;
            }
            EventKind::RecvCall => self.recv_calls += 1,
            EventKind::Socket { .. } => self.sockets += 1,
            EventKind::Connect { .. } => self.connects += 1,
            EventKind::Accept { .. } => self.accepts += 1,
            _ => {}
        }
    }
}

/// Whole-trace communication statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CommStats {
    /// Counters per process.
    pub per_proc: HashMap<ProcKey, ProcStats>,
    /// Messages and bytes per ordered (from, to) pair, recovered by
    /// the pairing analysis.
    pub per_pair: HashMap<(ProcKey, ProcKey), (u64, u64)>,
    /// Matched messages.
    pub matched: u64,
    /// Sends never matched to a receive (lost datagrams or unread
    /// bytes).
    pub unmatched_sends: u64,
    /// Estimated clock offset of machine B relative to machine A for
    /// each machine pair (ms): midpoint of the interval allowed by the
    /// two message directions, `None` when only one direction was
    /// observed.
    pub clock_offsets: HashMap<(u32, u32), OffsetEstimate>,
    /// Histogram of sent message sizes.
    pub sizes: SizeHistogram,
}

/// Clock-offset estimate between two machines, from message stamps.
///
/// For a message A→B, `recv_stamp - send_stamp = offset(B−A) +
/// latency`, so `offset ≤ recv−send`. Messages B→A bound it from the
/// other side. With both directions the true offset lies in
/// `[lo, hi]`; the midpoint is the classical symmetric estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OffsetEstimate {
    /// Lower bound on `clock(B) - clock(A)` in ms (from B→A traffic);
    /// `None` if no B→A message was seen.
    pub lo_ms: Option<i64>,
    /// Upper bound (from A→B traffic); `None` if unseen.
    pub hi_ms: Option<i64>,
}

impl OffsetEstimate {
    /// Midpoint estimate when both bounds exist.
    pub fn midpoint_ms(&self) -> Option<f64> {
        match (self.lo_ms, self.hi_ms) {
            (Some(lo), Some(hi)) => Some((lo + hi) as f64 / 2.0),
            _ => None,
        }
    }
}

impl CommStats {
    /// Computes statistics over a trace and its pairing.
    pub fn analyze(trace: &Trace, pairing: &Pairing) -> CommStats {
        let mut per_proc: HashMap<ProcKey, ProcStats> = HashMap::new();
        for e in &trace.events {
            per_proc.entry(e.proc).or_default().record(e);
        }
        CommStats::with_proc_stats(per_proc, SizeHistogram::of_sends(trace), trace, pairing)
    }

    /// Assembles statistics from already-accumulated per-process
    /// counters and size histogram (grown incrementally via
    /// [`ProcStats::record`] / [`SizeHistogram::add`]) plus the
    /// pairing-derived parts, which are recomputed here. This is the
    /// same code path [`CommStats::analyze`] takes, so incremental and
    /// batch accumulation agree exactly.
    pub fn with_proc_stats(
        per_proc: HashMap<ProcKey, ProcStats>,
        sizes: SizeHistogram,
        trace: &Trace,
        pairing: &Pairing,
    ) -> CommStats {
        let mut per_pair: HashMap<(ProcKey, ProcKey), (u64, u64)> = HashMap::new();
        for m in &pairing.messages {
            let e = per_pair.entry((m.from, m.to)).or_default();
            e.0 += 1;
            e.1 += m.bytes as u64;
        }
        let clock_offsets = estimate_offsets(trace, pairing);
        CommStats {
            per_proc,
            per_pair,
            matched: pairing.messages.len() as u64,
            unmatched_sends: pairing.unmatched_sends.len() as u64,
            clock_offsets,
            sizes,
        }
    }

    /// Renders the classic per-process table.
    pub fn table(&self) -> String {
        let mut procs: Vec<&ProcKey> = self.per_proc.keys().collect();
        procs.sort();
        let mut out = String::from(
            "process      sends  bytes_out  recvs  bytes_in  sockets  conn  acc  cpu_ms\n",
        );
        for p in procs {
            let s = &self.per_proc[p];
            out.push_str(&format!(
                "{:<12} {:>5} {:>10} {:>6} {:>9} {:>8} {:>5} {:>4} {:>7}\n",
                p.to_string(),
                s.sends,
                s.bytes_sent,
                s.recvs,
                s.bytes_recv,
                s.sockets,
                s.connects,
                s.accepts,
                s.cpu_ms
            ));
        }
        out
    }
}

impl fmt::Display for CommStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.table())?;
        writeln!(
            f,
            "matched messages: {}   unmatched sends: {}",
            self.matched, self.unmatched_sends
        )
    }
}

fn estimate_offsets(trace: &Trace, pairing: &Pairing) -> HashMap<(u32, u32), OffsetEstimate> {
    // For ordered machine pair (a, b) with a < b, collect the minimum
    // apparent delay in each direction.
    let mut min_ab: HashMap<(u32, u32), i64> = HashMap::new(); // a→b: recv−send
    let mut min_ba: HashMap<(u32, u32), i64> = HashMap::new(); // b→a: recv−send
    for m in &pairing.messages {
        let s = &trace.events[m.send_idx];
        let r = &trace.events[m.recv_idx];
        let (ma, mb) = (s.proc.machine, r.proc.machine);
        if ma == mb {
            continue;
        }
        let diff = r.cpu_time as i64 - s.cpu_time as i64;
        if ma < mb {
            let e = min_ab.entry((ma, mb)).or_insert(i64::MAX);
            *e = (*e).min(diff);
        } else {
            let e = min_ba.entry((mb, ma)).or_insert(i64::MAX);
            *e = (*e).min(diff);
        }
    }
    let mut out = HashMap::new();
    let keys: Vec<(u32, u32)> = min_ab.keys().chain(min_ba.keys()).copied().collect();
    for k in keys {
        if out.contains_key(&k) {
            continue;
        }
        // offset(b−a) ≤ min over a→b of (recv−send)
        // offset(b−a) ≥ −min over b→a of (recv−send)
        let hi = min_ab.get(&k).copied();
        let lo = min_ba.get(&k).copied().map(|v| -v);
        out.insert(
            k,
            OffsetEstimate {
                lo_ms: lo,
                hi_ms: hi,
            },
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pairing::Pairing;
    use crate::trace::Trace;

    /// Machine 1's clock is ~500 ms ahead of machine 0's; latency is
    /// ~10 ms each way.
    const LOG: &str = "\
event=send machine=0 cpuTime=1000 procTime=10 traceType=1 pid=1 pc=1 sock=3 msgLength=100 destName=inet:1:53
event=receive machine=1 cpuTime=1510 procTime=0 traceType=3 pid=2 pc=1 sock=7 msgLength=100 sourceName=inet:0:1024
event=send machine=1 cpuTime=1520 procTime=10 traceType=1 pid=2 pc=2 sock=7 msgLength=40 destName=inet:0:1024
event=receive machine=0 cpuTime=1030 procTime=20 traceType=3 pid=1 pc=2 sock=3 msgLength=40 sourceName=inet:1:53
";

    fn build() -> CommStats {
        let t = Trace::parse(LOG);
        let p = Pairing::analyze(&t);
        CommStats::analyze(&t, &p)
    }

    #[test]
    fn per_process_counters() {
        let s = build();
        let p1 = s.per_proc[&ProcKey { machine: 0, pid: 1 }];
        assert_eq!(p1.sends, 1);
        assert_eq!(p1.bytes_sent, 100);
        assert_eq!(p1.recvs, 1);
        assert_eq!(p1.bytes_recv, 40);
        assert_eq!(p1.cpu_ms, 20);
    }

    #[test]
    fn per_pair_traffic() {
        let s = build();
        let a = ProcKey { machine: 0, pid: 1 };
        let b = ProcKey { machine: 1, pid: 2 };
        assert_eq!(s.per_pair[&(a, b)], (1, 100));
        assert_eq!(s.per_pair[&(b, a)], (1, 40));
        assert_eq!(s.matched, 2);
        assert_eq!(s.unmatched_sends, 0);
    }

    #[test]
    fn clock_offset_bracket_contains_truth() {
        let s = build();
        let est = s.clock_offsets[&(0, 1)];
        // True offset: +500 ms. A→B diff: 510 (upper bound).
        // B→A diff: −490 → lower bound 490.
        assert_eq!(est.hi_ms, Some(510));
        assert_eq!(est.lo_ms, Some(490));
        let mid = est.midpoint_ms().unwrap();
        assert!((mid - 500.0).abs() < 11.0, "midpoint {mid} far from 500");
    }

    #[test]
    fn table_renders_all_processes() {
        let s = build();
        let t = s.table();
        assert!(t.contains("m0:p1"));
        assert!(t.contains("m1:p2"));
        assert!(s.to_string().contains("matched messages: 2"));
    }

    #[test]
    fn one_directional_traffic_gives_half_bracket() {
        let log = "\
event=send machine=0 cpuTime=100 procTime=0 traceType=1 pid=1 pc=1 sock=1 msgLength=10 destName=inet:1:5
event=receive machine=1 cpuTime=130 procTime=0 traceType=3 pid=2 pc=1 sock=2 msgLength=10 sourceName=inet:0:1024
";
        let t = Trace::parse(log);
        let p = Pairing::analyze(&t);
        let s = CommStats::analyze(&t, &p);
        let est = s.clock_offsets[&(0, 1)];
        assert_eq!(est.hi_ms, Some(30));
        assert_eq!(est.lo_ms, None);
        assert_eq!(est.midpoint_ms(), None);
    }

    #[test]
    fn size_histogram_buckets_powers_of_two() {
        let mut h = SizeHistogram::default();
        for len in [0, 1, 2, 3, 4, 5, 8, 9, 1024] {
            h.add(len);
        }
        assert_eq!(h.total, 9);
        assert_eq!(h.buckets[0], 2, "0 and 1");
        assert_eq!(h.buckets[1], 1, "2");
        assert_eq!(h.buckets[2], 2, "3 and 4");
        assert_eq!(h.buckets[3], 2, "5 and 8");
        assert_eq!(h.buckets[4], 1, "9");
        assert_eq!(h.buckets[10], 1, "1024");
        assert_eq!(SizeHistogram::range(3), (4, 8));
        let shown = h.to_string();
        assert!(shown.contains("9 messages"), "{shown}");
        assert!(shown.contains('#'), "{shown}");
    }

    #[test]
    fn stats_include_the_histogram() {
        let s = build();
        assert_eq!(s.sizes.total, 2, "two sends in the fixture");
    }
}
