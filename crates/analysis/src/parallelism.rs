//! Measurement of parallelism.
//!
//! The paper lists "measurement of parallelism" among the analyses
//! performed with the tools (§3.3). With only event records to go on,
//! the measure is built from the `procTime` deltas between successive
//! events of each process: the CPU time a process accumulated between
//! two of its events is work it did in that interval.
//!
//! "The process time allows the estimation of the amount of work
//! necessary between two events. The granularity of this measure is
//! large, however. CPU use is updated in increments of 10ms. Estimates
//! based on the reported values must recognize this limitation."
//! (§4.1) — the docs of [`ParallelismReport`] restate this caveat.

use crate::trace::{ProcKey, Trace};
use std::collections::HashMap;
use std::fmt;

/// A per-process busy interval on its machine's clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusySlice {
    /// The process.
    pub proc: ProcKey,
    /// Interval start (machine-local ms).
    pub start_ms: u32,
    /// Interval end.
    pub end_ms: u32,
    /// CPU ms charged within the interval (10 ms granularity).
    pub busy_ms: u32,
}

/// The parallelism profile of a computation.
///
/// All clock arithmetic is per machine; the cross-machine aggregate
/// (`speedup`) divides total busy time by the longest per-machine
/// span, which is exactly the bound an observer without synchronized
/// clocks can justify. Remember the 10 ms `procTime` granularity when
/// reading small numbers.
#[derive(Debug, Clone, Default)]
pub struct ParallelismReport {
    /// Busy slices per process, in trace order.
    pub slices: Vec<BusySlice>,
    /// Total CPU ms per process.
    pub busy_per_proc: HashMap<ProcKey, u32>,
    /// Observed span per machine (max stamp − min stamp, ms).
    pub span_per_machine: HashMap<u32, u32>,
    /// Total busy ms across all processes.
    pub total_busy_ms: u64,
    /// The longest machine span, ms.
    pub max_span_ms: u32,
}

impl ParallelismReport {
    /// Builds the profile from a trace.
    pub fn analyze(trace: &Trace) -> ParallelismReport {
        let mut slices = Vec::new();
        let mut busy_per_proc: HashMap<ProcKey, u32> = HashMap::new();
        let mut last: HashMap<ProcKey, (u32, u32)> = HashMap::new(); // (cpu_time, proc_time)
        let mut span: HashMap<u32, (u32, u32)> = HashMap::new(); // machine → (min, max)

        for e in &trace.events {
            let s = span
                .entry(e.proc.machine)
                .or_insert((e.cpu_time, e.cpu_time));
            s.0 = s.0.min(e.cpu_time);
            s.1 = s.1.max(e.cpu_time);
            if let Some((t0, p0)) = last.get(&e.proc).copied() {
                let busy = e.proc_time.saturating_sub(p0);
                if busy > 0 {
                    slices.push(BusySlice {
                        proc: e.proc,
                        start_ms: t0,
                        end_ms: e.cpu_time.max(t0),
                        busy_ms: busy,
                    });
                }
            }
            let entry = busy_per_proc.entry(e.proc).or_insert(0);
            *entry = (*entry).max(e.proc_time);
            last.insert(e.proc, (e.cpu_time, e.proc_time));
        }

        let span_per_machine: HashMap<u32, u32> =
            span.into_iter().map(|(m, (lo, hi))| (m, hi - lo)).collect();
        let total_busy_ms = busy_per_proc.values().map(|&v| v as u64).sum();
        let max_span_ms = span_per_machine.values().copied().max().unwrap_or(0);
        ParallelismReport {
            slices,
            busy_per_proc,
            span_per_machine,
            total_busy_ms,
            max_span_ms,
        }
    }

    /// Busy time divided by the longest machine span: the effective
    /// number of concurrently busy processors. 0 when the trace spans
    /// no time.
    pub fn speedup(&self) -> f64 {
        if self.max_span_ms == 0 {
            0.0
        } else {
            self.total_busy_ms as f64 / self.max_span_ms as f64
        }
    }

    /// Average number of busy processes at a machine's instant,
    /// computed by sweeping that machine's busy slices. Useful for the
    /// per-machine parallelism profile.
    pub fn machine_concurrency(&self, machine: u32) -> f64 {
        let span = match self.span_per_machine.get(&machine) {
            Some(&s) if s > 0 => s as f64,
            _ => return 0.0,
        };
        let busy: u64 = self
            .slices
            .iter()
            .filter(|s| s.proc.machine == machine)
            .map(|s| s.busy_ms as u64)
            .sum();
        busy as f64 / span
    }
}

impl fmt::Display for ParallelismReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "total busy {} ms over a span of {} ms → parallelism {:.2}",
            self.total_busy_ms,
            self.max_span_ms,
            self.speedup()
        )?;
        let mut procs: Vec<&ProcKey> = self.busy_per_proc.keys().collect();
        procs.sort();
        for p in procs {
            writeln!(
                f,
                "  {:<10} busy {} ms",
                p.to_string(),
                self.busy_per_proc[p]
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Trace;

    /// Two processes on two machines, each busy 100 ms over a 100 ms
    /// span: parallelism 2.
    const PARALLEL: &str = "\
event=socket machine=0 cpuTime=0 procTime=0 traceType=4 pid=1 pc=1 sock=1 domain=2 type=1 protocol=0
event=termproc machine=0 cpuTime=100 procTime=100 traceType=10 pid=1 pc=2 reason=0
event=socket machine=1 cpuTime=0 procTime=0 traceType=4 pid=2 pc=1 sock=1 domain=2 type=1 protocol=0
event=termproc machine=1 cpuTime=100 procTime=100 traceType=10 pid=2 pc=2 reason=0
";

    /// Two processes alternating on one timeline: parallelism ~1.
    const SEQUENTIAL: &str = "\
event=socket machine=0 cpuTime=0 procTime=0 traceType=4 pid=1 pc=1 sock=1 domain=2 type=1 protocol=0
event=termproc machine=0 cpuTime=100 procTime=50 traceType=10 pid=1 pc=2 reason=0
event=socket machine=0 cpuTime=100 procTime=0 traceType=4 pid=2 pc=1 sock=1 domain=2 type=1 protocol=0
event=termproc machine=0 cpuTime=200 procTime=50 traceType=10 pid=2 pc=2 reason=0
";

    #[test]
    fn parallel_computation_shows_speedup_two() {
        let r = ParallelismReport::analyze(&Trace::parse(PARALLEL));
        assert_eq!(r.total_busy_ms, 200);
        assert_eq!(r.max_span_ms, 100);
        assert!((r.speedup() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn sequential_computation_shows_speedup_half() {
        let r = ParallelismReport::analyze(&Trace::parse(SEQUENTIAL));
        assert_eq!(r.total_busy_ms, 100);
        assert_eq!(r.max_span_ms, 200);
        assert!((r.speedup() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn busy_slices_between_events() {
        let r = ParallelismReport::analyze(&Trace::parse(PARALLEL));
        assert_eq!(r.slices.len(), 2);
        assert_eq!(r.slices[0].busy_ms, 100);
        assert_eq!(r.slices[0].start_ms, 0);
        assert_eq!(r.slices[0].end_ms, 100);
    }

    #[test]
    fn machine_concurrency_per_machine() {
        let r = ParallelismReport::analyze(&Trace::parse(SEQUENTIAL));
        assert!((r.machine_concurrency(0) - 0.5).abs() < 1e-9);
        assert_eq!(r.machine_concurrency(9), 0.0);
    }

    #[test]
    fn empty_trace_reports_zero() {
        let r = ParallelismReport::analyze(&Trace::default());
        assert_eq!(r.speedup(), 0.0);
        assert_eq!(r.total_busy_ms, 0);
    }

    #[test]
    fn display_renders() {
        let r = ParallelismReport::analyze(&Trace::parse(PARALLEL));
        let s = r.to_string();
        assert!(s.contains("parallelism 2.00"));
        assert!(s.contains("m0:p1"));
    }
}
