//! Partial global ordering of events — happens-before.
//!
//! "Statements regarding the global ordering of events can only be
//! made on the basis of evidence within the trace. For example, since
//! a message must be sent before it may be received, the times of
//! sending and receiving a message can always be ordered relative to
//! one another. Given these constraints, much of the global ordering
//! can be deduced." (§4.1)
//!
//! The construction is Lamport's (the paper cites [Lamport 78]): each
//! process's events are totally ordered by their position in its local
//! stream, and every matched message contributes a send→receive edge.
//! The result is a DAG whose reachability *is* the deducible global
//! order.

use crate::pairing::Pairing;
use crate::trace::{ProcKey, Trace};
use std::collections::HashMap;

/// The happens-before relation over a trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HappensBefore {
    /// Successor lists: `succs[i]` are events directly after event `i`
    /// (same-process successor and message edges).
    succs: Vec<Vec<usize>>,
    /// Lamport clock per event.
    lamport: Vec<u64>,
    /// Vector-clock index per process.
    proc_index: HashMap<ProcKey, usize>,
    /// Vector clock per event.
    vclock: Vec<Vec<u64>>,
    /// Whether the edge set contained a cycle — evidence of a wrong
    /// message matching (a receive paired with a send that it could
    /// not have been caused by), never of a real execution.
    has_cycle: bool,
}

impl HappensBefore {
    /// Builds the relation from a trace and its message pairing.
    ///
    /// Events are assumed to appear in each process's local order in
    /// the trace (true of any filter log: each meter connection is an
    /// ordered stream and records carry monotone local stamps).
    pub fn build(trace: &Trace, pairing: &Pairing) -> HappensBefore {
        let n = trace.events.len();
        let mut succs = vec![Vec::new(); n];
        // Program order.
        let mut last_of: HashMap<ProcKey, usize> = HashMap::new();
        for (i, e) in trace.events.iter().enumerate() {
            if let Some(&prev) = last_of.get(&e.proc) {
                succs[prev].push(i);
            }
            last_of.insert(e.proc, i);
        }
        // Message order.
        for m in &pairing.messages {
            if m.send_idx < n && m.recv_idx < n {
                succs[m.send_idx].push(m.recv_idx);
            }
        }
        // Lamport clocks and vector clocks in one forward pass over a
        // topological order. Trace order is already topological for
        // program edges; message edges can point backwards in trace
        // order (clock skew!), so do a proper Kahn pass.
        let procs = trace.processes();
        let proc_index: HashMap<ProcKey, usize> =
            procs.iter().enumerate().map(|(i, p)| (*p, i)).collect();
        let mut indeg = vec![0usize; n];
        for ss in &succs {
            for &s in ss {
                indeg[s] += 1;
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut lamport = vec![0u64; n];
        let mut vclock = vec![vec![0u64; procs.len()]; n];
        let mut seen = 0;
        while let Some(i) = queue.pop() {
            seen += 1;
            let pi = proc_index[&trace.events[i].proc];
            vclock[i][pi] += 1;
            for &s in &succs[i] {
                lamport[s] = lamport[s].max(lamport[i] + 1);
                let (a, b) = if i < s {
                    let (lo, hi) = vclock.split_at_mut(s);
                    (&lo[i], &mut hi[0])
                } else {
                    let (lo, hi) = vclock.split_at_mut(i);
                    (&hi[0], &mut lo[s])
                };
                for (bv, av) in b.iter_mut().zip(a.iter()) {
                    *bv = (*bv).max(*av);
                }
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    queue.push(s);
                }
            }
        }
        // A cycle cannot arise from a real execution (messages flow
        // forward in real time); it means the pairing heuristics
        // matched a receive to a send it was not caused by. Degrade
        // gracefully: events on the cycle keep zeroed clocks (they
        // never left Kahn's queue) and the flag tells callers the
        // deduced order is incomplete.
        let has_cycle = seen != n;
        HappensBefore {
            succs,
            lamport,
            proc_index,
            vclock,
            has_cycle,
        }
    }

    /// Whether the graph contained a cycle (see [`HappensBefore`]
    /// field docs); when true, clock-based queries are incomplete for
    /// the events on the cycle.
    pub fn has_cycle(&self) -> bool {
        self.has_cycle
    }

    /// Whether event `a` happens before event `b` (strictly).
    pub fn precedes(&self, a: usize, b: usize) -> bool {
        if a == b {
            return false;
        }
        // Vector-clock comparison: a → b iff Va ≤ Vb and Va ≠ Vb …
        // but our per-event vector clocks count events per process, so
        // a → b iff Va ≤ Vb componentwise (a's knowledge is contained
        // in b's) and they differ.
        let (va, vb) = match (self.vclock.get(a), self.vclock.get(b)) {
            (Some(x), Some(y)) => (x, y),
            _ => return false,
        };
        va.iter().zip(vb).all(|(x, y)| x <= y) && va != vb
    }

    /// Whether two events are concurrent (neither precedes the other).
    pub fn concurrent(&self, a: usize, b: usize) -> bool {
        a != b && !self.precedes(a, b) && !self.precedes(b, a)
    }

    /// The Lamport clock of an event.
    pub fn lamport(&self, idx: usize) -> u64 {
        self.lamport.get(idx).copied().unwrap_or(0)
    }

    /// The vector clock of an event (indexed per
    /// [`HappensBefore::process_index`]).
    pub fn vector(&self, idx: usize) -> Option<&[u64]> {
        self.vclock.get(idx).map(Vec::as_slice)
    }

    /// The vector-clock component index of a process.
    pub fn process_index(&self, p: ProcKey) -> Option<usize> {
        self.proc_index.get(&p).copied()
    }

    /// Direct successors of an event.
    pub fn successors(&self, idx: usize) -> &[usize] {
        self.succs.get(idx).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The fraction of event pairs that are ordered by the relation,
    /// in `[0, 1]` — a measure of how much of the global ordering the
    /// trace lets us deduce. 1 means a total order (fully sequential
    /// computation); lower values mean more genuine concurrency.
    pub fn ordered_fraction(&self) -> f64 {
        let n = self.vclock.len();
        if n < 2 {
            return 1.0;
        }
        let mut ordered = 0u64;
        let mut total = 0u64;
        for a in 0..n {
            for b in (a + 1)..n {
                total += 1;
                if self.precedes(a, b) || self.precedes(b, a) {
                    ordered += 1;
                }
            }
        }
        ordered as f64 / total as f64
    }

    /// Verifies that local timestamps respect the deduced order *per
    /// machine*: if `a → b` and both events are on the same machine,
    /// then `cpuTime(a) <= cpuTime(b)`. Cross-machine stamps carry no
    /// such guarantee (§4.1). Returns the violating pairs.
    pub fn clock_anomalies(&self, trace: &Trace) -> Vec<(usize, usize)> {
        let mut bad = Vec::new();
        for (i, e) in trace.events.iter().enumerate() {
            for &s in self.successors(i) {
                let e2 = &trace.events[s];
                if e.proc.machine == e2.proc.machine && e.cpu_time > e2.cpu_time {
                    bad.push((i, s));
                }
            }
        }
        bad
    }

    /// Send/receive pairs whose *cross-machine* timestamps run
    /// backwards (receive stamped before send) — direct evidence of
    /// clock skew, the phenomenon that makes happens-before necessary.
    pub fn skew_evidence(&self, trace: &Trace, pairing: &Pairing) -> Vec<(usize, usize)> {
        pairing
            .messages
            .iter()
            .filter(|m| {
                let s = &trace.events[m.send_idx];
                let r = &trace.events[m.recv_idx];
                s.proc.machine != r.proc.machine && r.cpu_time < s.cpu_time
            })
            .map(|m| (m.send_idx, m.recv_idx))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pairing::Pairing;
    use crate::trace::Trace;

    /// m0:p1 sends to m1:p2; receiver's clock is behind, so the
    /// receive is stamped *earlier* than the send.
    const SKEWED: &str = "\
event=send machine=0 cpuTime=1000 procTime=0 traceType=1 pid=1 pc=1 sock=3 msgLength=10 destName=inet:1:53
event=receive machine=1 cpuTime=400 procTime=0 traceType=3 pid=2 pc=1 sock=7 msgLength=10 sourceName=inet:0:1024
event=send machine=1 cpuTime=410 procTime=0 traceType=1 pid=2 pc=2 sock=7 msgLength=5 destName=inet:0:1024
event=receive machine=0 cpuTime=1050 procTime=0 traceType=3 pid=1 pc=2 sock=3 msgLength=5 sourceName=inet:1:53
";

    fn build(log: &str) -> (Trace, Pairing, HappensBefore) {
        let t = Trace::parse(log);
        let p = Pairing::analyze(&t);
        let hb = HappensBefore::build(&t, &p);
        (t, p, hb)
    }

    #[test]
    fn send_precedes_receive_despite_clock_skew() {
        let (_t, p, hb) = build(SKEWED);
        assert_eq!(p.messages.len(), 2);
        assert!(hb.precedes(0, 1), "send → recv");
        assert!(hb.precedes(0, 3), "transitively through the reply");
        assert!(!hb.precedes(1, 0));
        assert!(hb.lamport(1) > hb.lamport(0));
    }

    #[test]
    fn skew_evidence_detects_backwards_stamps() {
        let (t, p, hb) = build(SKEWED);
        let ev = hb.skew_evidence(&t, &p);
        assert_eq!(ev, vec![(0, 1)], "first message's stamps run backwards");
        assert!(hb.clock_anomalies(&t).is_empty(), "per-machine order holds");
    }

    #[test]
    fn concurrent_events_are_detected() {
        let log = "\
event=send machine=0 cpuTime=1 procTime=0 traceType=1 pid=1 pc=1 sock=1 msgLength=1 destName=inet:9:9
event=send machine=1 cpuTime=1 procTime=0 traceType=1 pid=2 pc=1 sock=1 msgLength=1 destName=inet:9:8
";
        let (_t, _p, hb) = build(log);
        assert!(hb.concurrent(0, 1));
        assert!(!hb.concurrent(0, 0));
        assert_eq!(hb.ordered_fraction(), 0.0);
    }

    #[test]
    fn fully_sequential_trace_is_totally_ordered() {
        let log = "\
event=socket machine=0 cpuTime=1 procTime=0 traceType=4 pid=1 pc=1 sock=1 domain=2 type=1 protocol=0
event=send machine=0 cpuTime=2 procTime=0 traceType=1 pid=1 pc=2 sock=1 msgLength=1 destName=inet:0:9
event=termproc machine=0 cpuTime=3 procTime=0 traceType=10 pid=1 pc=3 reason=0
";
        let (_t, _p, hb) = build(log);
        assert_eq!(hb.ordered_fraction(), 1.0);
        assert_eq!(hb.lamport(0), 0);
        assert_eq!(hb.lamport(2), 2);
    }

    #[test]
    fn ordered_fraction_mixes_program_and_message_order() {
        let (_t, _p, hb) = build(SKEWED);
        // 4 events, all ordered through the request/reply chain.
        assert_eq!(hb.ordered_fraction(), 1.0);
    }

    #[test]
    fn wrong_matching_cycle_is_flagged_not_fatal() {
        use crate::pairing::MatchedMessage;
        use crate::trace::ProcKey;
        // Two events pointing at each other — impossible in a real
        // execution, so only a broken pairing produces it. The build
        // must survive and report the cycle.
        let log = "\
event=send machine=0 cpuTime=1 procTime=0 traceType=1 pid=1 pc=1 sock=1 msgLength=9 destName=inet:1:5
event=send machine=1 cpuTime=1 procTime=0 traceType=1 pid=2 pc=1 sock=1 msgLength=9 destName=inet:0:5
";
        let t = Trace::parse(log);
        let a = ProcKey { machine: 0, pid: 1 };
        let b = ProcKey { machine: 1, pid: 2 };
        let mut p = Pairing::default();
        for (s, r, f, to) in [(0, 1, a, b), (1, 0, b, a)] {
            p.messages.push(MatchedMessage {
                send_idx: s,
                recv_idx: r,
                from: f,
                to,
                bytes: 9,
            });
        }
        let hb = HappensBefore::build(&t, &p);
        assert!(hb.has_cycle());
        // A sound build over the same trace reports no cycle.
        let sound = HappensBefore::build(&t, &Pairing::analyze(&t));
        assert!(!sound.has_cycle());
    }

    #[test]
    fn vector_clocks_are_componentwise_monotone_along_edges() {
        let (t, _p, hb) = build(SKEWED);
        for i in 0..t.len() {
            for &s in hb.successors(i) {
                let vi = hb.vector(i).unwrap();
                let vs = hb.vector(s).unwrap();
                assert!(
                    vi.iter().zip(vs).all(|(a, b)| a <= b),
                    "edge {i}->{s} not monotone"
                );
            }
        }
    }
}
