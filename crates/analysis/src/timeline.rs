//! Activity timelines: event and traffic rates over (machine-local)
//! time.
//!
//! A companion to the parallelism measure: bucket each machine's
//! events by its own clock — cross-machine clocks are not comparable
//! (§4.1), so every machine gets its own timeline — and report event
//! counts and bytes per bucket. This is the figure one draws first
//! when looking for phases, stalls, and hot spots in a computation.

use crate::trace::{EventKind, Trace};
use std::collections::BTreeMap;
use std::fmt;

/// One bucket of one machine's timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Bucket {
    /// Events stamped inside the bucket.
    pub events: u32,
    /// Bytes sent by processes of this machine in the bucket.
    pub bytes_sent: u64,
    /// Bytes received.
    pub bytes_recv: u64,
}

/// Per-machine activity timelines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Timeline {
    /// Bucket width in machine-local milliseconds.
    pub bucket_ms: u32,
    /// `machine → (bucket start ms → bucket)`, sparsely populated.
    pub machines: BTreeMap<u32, BTreeMap<u32, Bucket>>,
}

impl Timeline {
    /// Buckets a trace with the given bucket width.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_ms` is zero.
    pub fn analyze(trace: &Trace, bucket_ms: u32) -> Timeline {
        assert!(bucket_ms > 0, "bucket width must be positive");
        let mut machines: BTreeMap<u32, BTreeMap<u32, Bucket>> = BTreeMap::new();
        for e in &trace.events {
            let start = (e.cpu_time / bucket_ms) * bucket_ms;
            let b = machines
                .entry(e.proc.machine)
                .or_default()
                .entry(start)
                .or_default();
            b.events += 1;
            match &e.kind {
                EventKind::Send { len, .. } => b.bytes_sent += *len as u64,
                EventKind::Recv { len, .. } => b.bytes_recv += *len as u64,
                _ => {}
            }
        }
        Timeline {
            bucket_ms,
            machines,
        }
    }

    /// The busiest bucket (by event count) of a machine, if any.
    pub fn peak(&self, machine: u32) -> Option<(u32, Bucket)> {
        self.machines
            .get(&machine)?
            .iter()
            .max_by_key(|(_, b)| b.events)
            .map(|(t, b)| (*t, *b))
    }

    /// Buckets of a machine in which *nothing* happened between its
    /// first and last active buckets — the stalls worth investigating.
    pub fn gaps(&self, machine: u32) -> Vec<u32> {
        let Some(tl) = self.machines.get(&machine) else {
            return Vec::new();
        };
        let (Some(&first), Some(&last)) = (tl.keys().next(), tl.keys().last()) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let mut t = first;
        while t < last {
            if !tl.contains_key(&t) {
                out.push(t);
            }
            t += self.bucket_ms;
        }
        out
    }
}

impl fmt::Display for Timeline {
    /// A terminal-friendly sparkline per machine: one `#`-bar per
    /// bucket, scaled to the global peak.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let peak = self
            .machines
            .values()
            .flat_map(|tl| tl.values())
            .map(|b| b.events)
            .max()
            .unwrap_or(1)
            .max(1);
        for (m, tl) in &self.machines {
            writeln!(
                f,
                "machine {m} ({} buckets of {} ms):",
                tl.len(),
                self.bucket_ms
            )?;
            for (t, b) in tl {
                let width = (b.events * 40).div_ceil(peak) as usize;
                writeln!(
                    f,
                    "  {:>8} ms |{:<40}| {:>4} ev {:>7}B out {:>7}B in",
                    t,
                    "#".repeat(width),
                    b.events,
                    b.bytes_sent,
                    b.bytes_recv
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Trace;

    const LOG: &str = "\
event=send machine=0 cpuTime=5 procTime=0 traceType=1 pid=1 pc=1 sock=1 msgLength=100 destName=inet:1:9
event=send machine=0 cpuTime=8 procTime=0 traceType=1 pid=1 pc=2 sock=1 msgLength=50 destName=inet:1:9
event=send machine=0 cpuTime=35 procTime=0 traceType=1 pid=1 pc=3 sock=1 msgLength=25 destName=inet:1:9
event=receive machine=1 cpuTime=12 procTime=0 traceType=3 pid=2 pc=1 sock=2 msgLength=100 sourceName=inet:0:7
";

    #[test]
    fn buckets_count_events_and_bytes() {
        let t = Timeline::analyze(&Trace::parse(LOG), 10);
        let m0 = &t.machines[&0];
        assert_eq!(m0[&0].events, 2);
        assert_eq!(m0[&0].bytes_sent, 150);
        assert_eq!(m0[&30].events, 1);
        let m1 = &t.machines[&1];
        assert_eq!(m1[&10].bytes_recv, 100);
    }

    #[test]
    fn peak_and_gaps() {
        let t = Timeline::analyze(&Trace::parse(LOG), 10);
        let (at, b) = t.peak(0).unwrap();
        assert_eq!(at, 0);
        assert_eq!(b.events, 2);
        // Machine 0 was silent in buckets 10 and 20.
        assert_eq!(t.gaps(0), vec![10, 20]);
        assert!(t.gaps(1).is_empty());
        assert!(t.gaps(9).is_empty(), "unknown machine has no gaps");
        assert!(t.peak(9).is_none());
    }

    #[test]
    fn display_draws_bars() {
        let t = Timeline::analyze(&Trace::parse(LOG), 10);
        let s = t.to_string();
        assert!(s.contains("machine 0"));
        assert!(s.contains('#'));
        assert!(s.contains("150B out") || s.contains("150"), "{s}");
    }

    #[test]
    #[should_panic(expected = "bucket width")]
    fn zero_bucket_panics() {
        let _ = Timeline::analyze(&Trace::default(), 0);
    }

    #[test]
    fn empty_trace_is_empty_timeline() {
        let t = Timeline::analyze(&Trace::default(), 10);
        assert!(t.machines.is_empty());
    }
}
