//! Recovering who talked to whom.
//!
//! "For some calls, not all the information for the message is
//! available. For example, when one writes across a connection, the
//! name of the recipient is not available to the metering software. …
//! By examining the sockets that were paired when the connection was
//! created, the recipient information can be recovered. This is one of
//! the tasks of the analysis programs." (§4.1)
//!
//! Two steps:
//!
//! 1. **Connection pairing** — match every `connect` event with its
//!    `accept` by the name-symmetry rule (the connector's `sockName`
//!    is the acceptor's `peerName` and vice versa).
//! 2. **Message matching** — pair `send` events with `receive` events:
//!    by byte position for streams (reliable and ordered), and by
//!    exact payload length per (source, destination) name pair for
//!    datagrams — a datagram is delivered whole, so a receive of `k`
//!    bytes can only have been caused by a send of `k` bytes on that
//!    channel. Unmatched sends are lost datagrams; unmatched receives
//!    are duplicated deliveries (or deliveries whose send escaped the
//!    meter).

use crate::trace::{Event, EventKind, ProcKey, Trace};
use std::collections::HashMap;

/// A recovered stream connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Connection {
    /// The initiating side: process and its socket id.
    pub client: (ProcKey, u32),
    /// The accepting side: process and the *new* connection socket.
    pub server: (ProcKey, u32),
    /// Name bound to the connecting socket.
    pub client_name: Option<String>,
    /// Name bound to the accepting socket.
    pub server_name: Option<String>,
    /// Trace indices of the connect and accept events.
    pub connect_idx: usize,
    /// Trace index of the accept event.
    pub accept_idx: usize,
}

/// One matched message: a send event paired with the receive event(s)
/// that consumed its bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchedMessage {
    /// Trace index of the send event.
    pub send_idx: usize,
    /// Trace index of the (first) receive event that consumed bytes of
    /// this send.
    pub recv_idx: usize,
    /// Sender process.
    pub from: ProcKey,
    /// Receiver process.
    pub to: ProcKey,
    /// Bytes attributed to this pairing.
    pub bytes: u32,
}

/// Everything pairing recovered from a trace.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Pairing {
    /// Recovered stream connections.
    pub connections: Vec<Connection>,
    /// Matched messages (streams and datagrams).
    pub messages: Vec<MatchedMessage>,
    /// Trace indices of send events never matched to a receive —
    /// datagrams lost in the network, or bytes unread at the end of
    /// the trace.
    pub unmatched_sends: Vec<usize>,
    /// Trace indices of datagram receive events never matched to a
    /// send — duplicated deliveries, or traffic from unmetered
    /// senders. (Stream receives are byte-matched and never appear
    /// here.)
    pub unmatched_recvs: Vec<usize>,
}

impl Pairing {
    /// Runs connection pairing and message matching over a trace.
    pub fn analyze(trace: &Trace) -> Pairing {
        let mut queues = PairQueues::default();
        for ev in &trace.events {
            queues.add(ev);
        }
        Pairing::from_queues(trace, &queues)
    }

    /// Runs pairing over a trace whose pass-1 queues were already
    /// collected (incrementally, by a live consumer). This is the
    /// *same* code path [`Pairing::analyze`] takes — `analyze` builds
    /// the queues in one sweep and calls here — so a queue set grown
    /// one event at a time yields a bit-identical pairing at any
    /// prefix.
    pub fn from_queues(trace: &Trace, queues: &PairQueues) -> Pairing {
        let connections = pair_connections(trace);
        let (messages, unmatched_sends, unmatched_recvs) = match_messages(queues, &connections);
        Pairing {
            connections,
            messages,
            unmatched_sends,
            unmatched_recvs,
        }
    }
}

/// Matches connect events to accept events by name symmetry.
fn pair_connections(trace: &Trace) -> Vec<Connection> {
    let mut out = Vec::new();
    let mut used_accepts = vec![false; trace.events.len()];
    let accepts: Vec<&Event> = trace
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Accept { .. }))
        .collect();
    for ev in &trace.events {
        let EventKind::Connect {
            sock_name: c_sock,
            peer_name: c_peer,
        } = &ev.kind
        else {
            continue;
        };
        // The matching accept: its sockName is our peerName, its
        // peerName is our sockName, and it is the earliest unused one.
        let hit = accepts.iter().find(|a| {
            if used_accepts[a.idx] {
                return false;
            }
            let EventKind::Accept {
                sock_name: a_sock,
                peer_name: a_peer,
                ..
            } = &a.kind
            else {
                return false;
            };
            a_peer == c_sock && a_sock == c_peer && c_sock.is_some()
        });
        if let Some(a) = hit {
            used_accepts[a.idx] = true;
            let EventKind::Accept { new_sock, .. } = a.kind else {
                unreachable!()
            };
            out.push(Connection {
                client: (ev.proc, ev.sock.unwrap_or(0)),
                server: (a.proc, new_sock),
                client_name: c_sock.clone(),
                server_name: c_peer.clone(),
                connect_idx: ev.idx,
                accept_idx: a.idx,
            });
        }
    }
    out
}

/// One queued message endpoint record: the trace index, the process
/// on this side of the channel, and the payload length in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct QueuedMsg {
    idx: usize,
    proc: ProcKey,
    len: u32,
}

/// Pass-1 state of message matching: per-channel FIFO queues of send
/// and receive events. The queues are **append-only** — `add` folds
/// one event in O(1) — so a live consumer can grow them as records
/// arrive and ask for a full [`Pairing`] at any point via
/// [`Pairing::from_queues`]. Matching itself (pass 2) works on local
/// copies and never mutates the queues.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PairQueues {
    /// Stream sends by (sender process, socket id).
    stream_sends: HashMap<(ProcKey, u32), Vec<QueuedMsg>>,
    /// Stream receives by (receiver process, socket id).
    stream_recvs: HashMap<(ProcKey, u32), Vec<QueuedMsg>>,
    /// Datagram sends by (sender process, destination name).
    dgram_sends: HashMap<(ProcKey, String), Vec<QueuedMsg>>,
    /// Datagram receives by (receiver process, source name).
    dgram_recvs: HashMap<(ProcKey, String), Vec<QueuedMsg>>,
    /// Every send event's trace index, in trace order.
    all_sends: Vec<usize>,
}

impl PairQueues {
    /// Folds one trace event into the queues. Events must be offered
    /// in trace order (matching relies on queue order being trace
    /// order); non-message events are ignored.
    pub fn add(&mut self, ev: &Event) {
        match &ev.kind {
            EventKind::Send { len, dest } => {
                self.all_sends.push(ev.idx);
                let rec = QueuedMsg {
                    idx: ev.idx,
                    proc: ev.proc,
                    len: *len,
                };
                match dest {
                    Some(name) => self
                        .dgram_sends
                        .entry((ev.proc, name.clone()))
                        .or_default()
                        .push(rec),
                    None => {
                        let Some(sock) = ev.sock else { return };
                        self.stream_sends
                            .entry((ev.proc, sock))
                            .or_default()
                            .push(rec);
                    }
                }
            }
            EventKind::Recv { len, source } => {
                let rec = QueuedMsg {
                    idx: ev.idx,
                    proc: ev.proc,
                    len: *len,
                };
                match source {
                    Some(name) => self
                        .dgram_recvs
                        .entry((ev.proc, name.clone()))
                        .or_default()
                        .push(rec),
                    None => {
                        let Some(sock) = ev.sock else { return };
                        self.stream_recvs
                            .entry((ev.proc, sock))
                            .or_default()
                            .push(rec);
                    }
                }
            }
            _ => {}
        }
    }

    /// Number of send events queued so far.
    pub fn n_sends(&self) -> usize {
        self.all_sends.len()
    }
}

/// Matches sends to receives. Crucially this is **order-insensitive
/// across processes**: each metered process delivers its records over
/// its own meter connection, so records of different processes
/// interleave arbitrarily in the log — a receive is routinely logged
/// before the send that caused it. Within one process, log order is
/// reliable (one ordered stream), which is all FIFO matching needs.
fn match_messages(
    queues: &PairQueues,
    connections: &[Connection],
) -> (Vec<MatchedMessage>, Vec<usize>, Vec<usize>) {
    // Stream endpoints pair through the recovered connections.
    let mut peer_of: HashMap<(ProcKey, u32), (ProcKey, u32)> = HashMap::new();
    for c in connections {
        peer_of.insert(c.client, c.server);
        peer_of.insert(c.server, c.client);
    }

    let mut matches: Vec<MatchedMessage> = Vec::new();
    let mut matched: std::collections::HashSet<usize> = std::collections::HashSet::new();

    // Pass 2a: streams — merge the sender queue into the paired
    // receiver queue, splitting bytes across read boundaries. The
    // byte-consumption state lives in local copies so the queues stay
    // immutable (and reusable for the next incremental call).
    let mut send_left: HashMap<(ProcKey, u32), Vec<(QueuedMsg, u32)>> = queues
        .stream_sends
        .iter()
        .map(|(k, v)| (*k, v.iter().map(|s| (*s, s.len)).collect()))
        .collect();
    let mut recv_endpoints: Vec<(ProcKey, u32)> = queues.stream_recvs.keys().copied().collect();
    recv_endpoints.sort();
    for rx_ep in recv_endpoints {
        let Some(&tx_ep) = peer_of.get(&rx_ep) else {
            continue;
        };
        let Some(sends) = send_left.get_mut(&tx_ep) else {
            continue;
        };
        let recvs = &queues.stream_recvs[&rx_ep];
        let mut si = 0;
        for r in recvs {
            let mut r_remaining = r.len;
            while r_remaining > 0 && si < sends.len() {
                let (s, s_remaining) = &mut sends[si];
                let take = (*s_remaining).min(r_remaining);
                if take > 0 {
                    matches.push(MatchedMessage {
                        send_idx: s.idx,
                        recv_idx: r.idx,
                        from: s.proc,
                        to: r.proc,
                        bytes: take,
                    });
                    matched.insert(s.idx);
                    *s_remaining -= take;
                    r_remaining -= take;
                }
                if *s_remaining == 0 {
                    si += 1;
                }
            }
        }
    }

    // Pass 2b: datagrams — each receive consumes exactly one send,
    // and a datagram is delivered whole: a receive of `k` bytes can
    // only have been caused by a send of `k` bytes. A receive group
    // (receiver, source-name) draws candidate sends from send groups
    // whose sender lives on the source name's machine and whose
    // destination names the receiver's machine; within the candidate
    // pool each receive takes the earliest unmatched send of *exactly
    // its length*. Length-aware matching is what keeps the deduced
    // order sound under duplication: a duplicated delivery finds its
    // one send already matched and is reported in `unmatched_recvs`
    // instead of stealing a later (possibly future) send — as long as
    // concurrently-in-flight payloads on one channel have distinct
    // lengths, no receive is ever paired with a send that did not
    // really precede it. (The beacon convention in
    // `crate::properties` is built on exactly this guarantee.)
    let mut unmatched_recvs: Vec<usize> = Vec::new();
    let mut recv_groups: Vec<(ProcKey, String)> = queues.dgram_recvs.keys().cloned().collect();
    recv_groups.sort();
    for key in recv_groups {
        let (rx_proc, src_name) = &key;
        let src_host = host_of(src_name);
        let mut candidates: Vec<(ProcKey, String)> = queues
            .dgram_sends
            .keys()
            .filter(|(tx_proc, dest)| {
                (src_host.is_none() || Some(tx_proc.machine) == src_host)
                    && host_of(dest).is_none_or(|h| h == rx_proc.machine)
            })
            .cloned()
            .collect();
        candidates.sort();
        // One pooled sender-order list: within a process, trace order
        // is send order; across candidate groups order is arbitrary
        // anyway (distinct sockets), so trace order is as good as any.
        let mut pool: Vec<&QueuedMsg> = candidates
            .iter()
            .flat_map(|cand| queues.dgram_sends[cand].iter())
            .collect();
        pool.sort_by_key(|s| s.idx);
        let recvs = &queues.dgram_recvs[&key];
        for r in recvs {
            let hit = pool
                .iter()
                .find(|s| !matched.contains(&s.idx) && s.len == r.len);
            match hit {
                Some(s) => {
                    matches.push(MatchedMessage {
                        send_idx: s.idx,
                        recv_idx: r.idx,
                        from: s.proc,
                        to: r.proc,
                        bytes: r.len,
                    });
                    matched.insert(s.idx);
                }
                None => unmatched_recvs.push(r.idx),
            }
        }
    }

    matches.sort_by_key(|m| (m.recv_idx, m.send_idx));
    let mut unmatched: Vec<usize> = queues
        .all_sends
        .iter()
        .copied()
        .filter(|i| !matched.contains(i))
        .collect();
    unmatched.sort_unstable();
    unmatched_recvs.sort_unstable();
    (matches, unmatched, unmatched_recvs)
}

/// The host id of an `inet:<host>:<port>` display name.
pub fn host_of(name: &str) -> Option<u32> {
    name.strip_prefix("inet:")?.split(':').next()?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Trace;

    fn stream_log() -> &'static str {
        // client m0:p1 connects sock 5 (name inet:0:1024) to server
        // m1:p2 listening (name inet:1:80); accept creates sock 9.
        "\
event=connect machine=0 cpuTime=10 procTime=0 traceType=9 pid=1 pc=1 sock=5 sockName=inet:0:1024 peerName=inet:1:80
event=accept machine=1 cpuTime=12 procTime=0 traceType=8 pid=2 pc=1 sock=4 newSock=9 sockName=inet:1:80 peerName=inet:0:1024
event=send machine=0 cpuTime=20 procTime=0 traceType=1 pid=1 pc=2 sock=5 msgLength=100 destName=-
event=send machine=0 cpuTime=21 procTime=0 traceType=1 pid=1 pc=3 sock=5 msgLength=50 destName=-
event=receive machine=1 cpuTime=30 procTime=0 traceType=3 pid=2 pc=2 sock=9 msgLength=120 sourceName=-
event=receive machine=1 cpuTime=31 procTime=0 traceType=3 pid=2 pc=3 sock=9 msgLength=30 sourceName=-
"
    }

    #[test]
    fn connections_pair_by_name_symmetry() {
        let t = Trace::parse(stream_log());
        let p = Pairing::analyze(&t);
        assert_eq!(p.connections.len(), 1);
        let c = &p.connections[0];
        assert_eq!(c.client, (ProcKey { machine: 0, pid: 1 }, 5));
        assert_eq!(c.server, (ProcKey { machine: 1, pid: 2 }, 9));
        assert_eq!(c.client_name.as_deref(), Some("inet:0:1024"));
    }

    #[test]
    fn stream_bytes_match_across_read_boundaries() {
        let t = Trace::parse(stream_log());
        let p = Pairing::analyze(&t);
        // 100+50 sent; reads of 120 then 30. Matching splits:
        // send#2 (100) → recv#4; send#3 (50) → recv#4 (20) + recv#5 (30).
        let total: u32 = p.messages.iter().map(|m| m.bytes).sum();
        assert_eq!(total, 150);
        assert!(p.unmatched_sends.is_empty());
        // The first matched pair is the first send into the first read.
        assert_eq!(p.messages[0].send_idx, 2);
        assert_eq!(p.messages[0].recv_idx, 4);
        assert_eq!(p.messages[0].bytes, 100);
        // Receiver identity recovered despite destName=- on the sends.
        assert!(p
            .messages
            .iter()
            .all(|m| m.to == ProcKey { machine: 1, pid: 2 }));
    }

    #[test]
    fn datagram_matching_and_loss_detection() {
        let log = "\
event=send machine=0 cpuTime=1 procTime=0 traceType=1 pid=1 pc=1 sock=3 msgLength=10 destName=inet:1:53
event=send machine=0 cpuTime=2 procTime=0 traceType=1 pid=1 pc=2 sock=3 msgLength=10 destName=inet:1:53
event=send machine=0 cpuTime=3 procTime=0 traceType=1 pid=1 pc=3 sock=3 msgLength=10 destName=inet:1:53
event=receive machine=1 cpuTime=9 procTime=0 traceType=3 pid=2 pc=1 sock=7 msgLength=10 sourceName=inet:0:1024
event=receive machine=1 cpuTime=10 procTime=0 traceType=3 pid=2 pc=2 sock=7 msgLength=10 sourceName=inet:0:1024
";
        let t = Trace::parse(log);
        let p = Pairing::analyze(&t);
        assert_eq!(p.messages.len(), 2);
        assert_eq!(p.unmatched_sends, vec![2], "third datagram was lost");
        assert!(p.unmatched_recvs.is_empty());
    }

    #[test]
    fn duplicated_delivery_is_an_unmatched_receive() {
        // One send of 10 bytes, two deliveries: the duplicate must not
        // steal a different send — it shows up as an unmatched receive.
        let log = "\
event=send machine=0 cpuTime=1 procTime=0 traceType=1 pid=1 pc=1 sock=3 msgLength=10 destName=inet:1:53
event=send machine=0 cpuTime=2 procTime=0 traceType=1 pid=1 pc=2 sock=3 msgLength=25 destName=inet:1:53
event=receive machine=1 cpuTime=9 procTime=0 traceType=3 pid=2 pc=1 sock=7 msgLength=10 sourceName=inet:0:1024
event=receive machine=1 cpuTime=10 procTime=0 traceType=3 pid=2 pc=2 sock=7 msgLength=10 sourceName=inet:0:1024
event=receive machine=1 cpuTime=11 procTime=0 traceType=3 pid=2 pc=3 sock=7 msgLength=25 sourceName=inet:0:1024
";
        let t = Trace::parse(log);
        let p = Pairing::analyze(&t);
        assert_eq!(p.messages.len(), 2);
        assert_eq!(p.unmatched_sends, Vec::<usize>::new());
        assert_eq!(p.unmatched_recvs, vec![3], "the duplicate delivery");
        // The 25-byte receive found the 25-byte send despite the
        // duplicate arriving between them.
        assert!(p
            .messages
            .iter()
            .any(|m| m.send_idx == 1 && m.recv_idx == 4 && m.bytes == 25));
    }

    #[test]
    fn two_connections_pair_independently() {
        let log = "\
event=connect machine=0 cpuTime=1 procTime=0 traceType=9 pid=1 pc=1 sock=5 sockName=inet:0:1024 peerName=inet:1:80
event=connect machine=0 cpuTime=2 procTime=0 traceType=9 pid=3 pc=1 sock=6 sockName=inet:0:1025 peerName=inet:1:80
event=accept machine=1 cpuTime=3 procTime=0 traceType=8 pid=2 pc=1 sock=4 newSock=9 sockName=inet:1:80 peerName=inet:0:1024
event=accept machine=1 cpuTime=4 procTime=0 traceType=8 pid=2 pc=2 sock=4 newSock=10 sockName=inet:1:80 peerName=inet:0:1025
";
        let t = Trace::parse(log);
        let p = Pairing::analyze(&t);
        assert_eq!(p.connections.len(), 2);
        assert_eq!(p.connections[0].server.1, 9);
        assert_eq!(p.connections[1].server.1, 10);
    }

    #[test]
    fn empty_trace_pairs_nothing() {
        let p = Pairing::analyze(&Trace::default());
        assert!(p.connections.is_empty());
        assert!(p.messages.is_empty());
        assert!(p.unmatched_sends.is_empty());
    }
}
