//! Structural studies: the shape of a computation.
//!
//! The third analysis family the paper mentions (§3.3). Builds the
//! process-communication graph — which processes exist, who created
//! whom, who talks to whom and how much — and renders it as a table or
//! Graphviz DOT.

use crate::pairing::Pairing;
use crate::trace::{EventKind, ProcKey, Trace};
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A directed edge of the communication graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommEdge {
    /// Sender.
    pub from: ProcKey,
    /// Receiver.
    pub to: ProcKey,
    /// Messages matched on this edge.
    pub messages: u64,
    /// Bytes matched on this edge.
    pub bytes: u64,
}

/// The structure of a computation.
#[derive(Debug, Clone, Default)]
pub struct StructureReport {
    /// All processes, in first-appearance order.
    pub processes: Vec<ProcKey>,
    /// Parent → child fork edges found in the trace.
    pub forks: Vec<(ProcKey, ProcKey)>,
    /// Communication edges with volumes.
    pub edges: Vec<CommEdge>,
}

impl StructureReport {
    /// Builds the structure from a trace and its message pairing.
    pub fn analyze(trace: &Trace, pairing: &Pairing) -> StructureReport {
        let processes = trace.processes();
        let mut forks = Vec::new();
        for e in &trace.events {
            if let EventKind::Fork { child } = e.kind {
                forks.push((
                    e.proc,
                    ProcKey {
                        machine: e.proc.machine,
                        pid: child,
                    },
                ));
            }
        }
        let mut vol: BTreeMap<(ProcKey, ProcKey), (u64, u64)> = BTreeMap::new();
        for m in &pairing.messages {
            let e = vol.entry((m.from, m.to)).or_default();
            e.0 += 1;
            e.1 += m.bytes as u64;
        }
        let edges = vol
            .into_iter()
            .map(|((from, to), (messages, bytes))| CommEdge {
                from,
                to,
                messages,
                bytes,
            })
            .collect();
        StructureReport {
            processes,
            forks,
            edges,
        }
    }

    /// Out-degree (distinct communication partners written to) per
    /// process.
    pub fn out_degree(&self) -> HashMap<ProcKey, usize> {
        let mut d: HashMap<ProcKey, usize> = HashMap::new();
        for e in &self.edges {
            *d.entry(e.from).or_default() += 1;
        }
        d
    }

    /// Identifies hub processes: those communicating with at least
    /// `min_partners` distinct peers (in either direction). A
    /// master/worker computation shows exactly one hub — the master.
    pub fn hubs(&self, min_partners: usize) -> Vec<ProcKey> {
        let mut partners: HashMap<ProcKey, Vec<ProcKey>> = HashMap::new();
        for e in &self.edges {
            let l = partners.entry(e.from).or_default();
            if !l.contains(&e.to) {
                l.push(e.to);
            }
            let l = partners.entry(e.to).or_default();
            if !l.contains(&e.from) {
                l.push(e.from);
            }
        }
        let mut hubs: Vec<ProcKey> = partners
            .into_iter()
            .filter(|(_, l)| l.len() >= min_partners)
            .map(|(p, _)| p)
            .collect();
        hubs.sort();
        hubs
    }

    /// Renders a Graphviz DOT drawing: machines as clusters, fork
    /// edges dashed, communication edges labelled with volume.
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph computation {\n  rankdir=LR;\n");
        let mut machines: Vec<u32> = self.processes.iter().map(|p| p.machine).collect();
        machines.sort_unstable();
        machines.dedup();
        for m in machines {
            out.push_str(&format!(
                "  subgraph cluster_m{m} {{ label=\"machine {m}\";\n"
            ));
            for p in self.processes.iter().filter(|p| p.machine == m) {
                out.push_str(&format!("    \"{p}\";\n"));
            }
            out.push_str("  }\n");
        }
        for (a, b) in &self.forks {
            out.push_str(&format!("  \"{a}\" -> \"{b}\" [style=dashed];\n"));
        }
        for e in &self.edges {
            out.push_str(&format!(
                "  \"{}\" -> \"{}\" [label=\"{} msgs / {} B\"];\n",
                e.from, e.to, e.messages, e.bytes
            ));
        }
        out.push_str("}\n");
        out
    }
}

impl fmt::Display for StructureReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} processes, {} fork edges",
            self.processes.len(),
            self.forks.len()
        )?;
        for e in &self.edges {
            writeln!(
                f,
                "  {} -> {}  {} msgs, {} bytes",
                e.from, e.to, e.messages, e.bytes
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pairing::Pairing;
    use crate::trace::Trace;

    /// A master on m0 exchanging datagrams with workers on m1 and m2,
    /// plus a fork on m0.
    const LOG: &str = "\
event=fork machine=0 cpuTime=1 procTime=0 traceType=7 pid=10 pc=1 newPid=11
event=send machine=0 cpuTime=2 procTime=0 traceType=1 pid=10 pc=2 sock=1 msgLength=8 destName=inet:1:70
event=send machine=0 cpuTime=3 procTime=0 traceType=1 pid=10 pc=3 sock=1 msgLength=8 destName=inet:2:70
event=receive machine=1 cpuTime=9 procTime=0 traceType=3 pid=20 pc=1 sock=2 msgLength=8 sourceName=inet:0:1024
event=receive machine=2 cpuTime=9 procTime=0 traceType=3 pid=30 pc=1 sock=2 msgLength=8 sourceName=inet:0:1024
";

    fn build() -> StructureReport {
        let t = Trace::parse(LOG);
        let p = Pairing::analyze(&t);
        StructureReport::analyze(&t, &p)
    }

    #[test]
    fn processes_and_forks() {
        let s = build();
        assert_eq!(s.processes.len(), 3);
        assert_eq!(
            s.forks,
            vec![(
                ProcKey {
                    machine: 0,
                    pid: 10
                },
                ProcKey {
                    machine: 0,
                    pid: 11
                }
            )]
        );
    }

    #[test]
    fn edges_carry_volume() {
        let s = build();
        assert_eq!(s.edges.len(), 2);
        assert!(s.edges.iter().all(|e| e.from.pid == 10));
        assert!(s.edges.iter().all(|e| e.messages == 1 && e.bytes == 8));
    }

    #[test]
    fn master_is_the_hub() {
        let s = build();
        assert_eq!(
            s.hubs(2),
            vec![ProcKey {
                machine: 0,
                pid: 10
            }]
        );
        assert!(s.hubs(3).is_empty());
        assert_eq!(
            s.out_degree()[&ProcKey {
                machine: 0,
                pid: 10
            }],
            2
        );
    }

    #[test]
    fn dot_output_contains_clusters_and_edges() {
        let s = build();
        let dot = s.to_dot();
        assert!(dot.contains("cluster_m0"));
        assert!(dot.contains("cluster_m2"));
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("1 msgs / 8 B"));
        assert!(dot.starts_with("digraph"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn display_renders() {
        let shown = build().to_string();
        assert!(shown.contains("3 processes, 1 fork edges"));
        assert!(shown.contains("m0:p10 -> m1:p20"));
    }
}
