//! Debugging analyses.
//!
//! The tools were "intended to aid the programmer in developing,
//! debugging, and measuring the performance of distributed programs"
//! (§1.1), and §5 reports a computation being *debugged* with them.
//! The `METERRECEIVECALL` event exists precisely for this: it records
//! that a process asked to receive — so a receive call with no
//! subsequent receive on the same socket is a process that blocked and
//! never got its message. Combined with unmatched sends (lost
//! datagrams) this pinpoints the classic distributed hang.

use crate::pairing::Pairing;
use crate::trace::{Event, EventKind, ProcKey, Trace};
use std::collections::HashMap;
use std::fmt;

/// A receive call that never completed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockedReceive {
    /// Trace index of the `receivecall` event.
    pub idx: usize,
    /// The blocked process.
    pub proc: ProcKey,
    /// The socket it was receiving on.
    pub sock: u32,
    /// Machine-local time of the call, ms.
    pub since_ms: u32,
}

/// A process that never produced a termination record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Unterminated {
    /// The process.
    pub proc: ProcKey,
    /// Its last event's trace index.
    pub last_idx: usize,
    /// Its last event's machine-local time, ms.
    pub last_ms: u32,
}

/// The debugging report.
#[derive(Debug, Clone, Default)]
pub struct DebugReport {
    /// Receive calls with no completing receive: candidate hangs.
    pub blocked_receives: Vec<BlockedReceive>,
    /// Trace indices of sends never matched to a receive: lost
    /// datagrams or bytes unread at trace end.
    pub lost_sends: Vec<usize>,
    /// Processes without a termproc record (only meaningful when the
    /// termproc flag was metered).
    pub unterminated: Vec<Unterminated>,
}

impl DebugReport {
    /// Builds the report from a trace and its pairing.
    pub fn analyze(trace: &Trace, pairing: &Pairing) -> DebugReport {
        // A receivecall completes when a *later* receive event of the
        // same process on the same socket appears.
        let mut pending: HashMap<(ProcKey, u32), Vec<usize>> = HashMap::new();
        for (i, e) in trace.events.iter().enumerate() {
            match (&e.kind, e.sock) {
                (EventKind::RecvCall, Some(sock)) => {
                    pending.entry((e.proc, sock)).or_default().push(i);
                }
                (EventKind::Recv { .. }, Some(sock)) => {
                    // Completes the oldest outstanding call. A receive
                    // without a recorded call (receivecall unflagged)
                    // is simply ignored here.
                    if let Some(q) = pending.get_mut(&(e.proc, sock)) {
                        if !q.is_empty() {
                            q.remove(0);
                        }
                    }
                }
                _ => {}
            }
        }
        let mut blocked_receives: Vec<BlockedReceive> = pending
            .into_iter()
            .flat_map(|((proc, sock), idxs)| idxs.into_iter().map(move |idx| (proc, sock, idx)))
            .map(|(proc, sock, idx)| BlockedReceive {
                idx,
                proc,
                sock,
                since_ms: trace.events[idx].cpu_time,
            })
            .collect();
        blocked_receives.sort_by_key(|b| b.idx);

        // Termination tracking.
        let mut last_event: HashMap<ProcKey, &Event> = HashMap::new();
        let mut terminated: Vec<ProcKey> = Vec::new();
        let mut saw_term_records = false;
        for e in &trace.events {
            last_event.insert(e.proc, e);
            if matches!(e.kind, EventKind::Term { .. }) {
                saw_term_records = true;
                terminated.push(e.proc);
            }
        }
        let mut unterminated: Vec<Unterminated> = if saw_term_records {
            last_event
                .values()
                .filter(|e| !terminated.contains(&e.proc))
                .map(|e| Unterminated {
                    proc: e.proc,
                    last_idx: e.idx,
                    last_ms: e.cpu_time,
                })
                .collect()
        } else {
            Vec::new()
        };
        unterminated.sort_by_key(|u| u.proc);

        DebugReport {
            blocked_receives,
            lost_sends: pairing.unmatched_sends.clone(),
            unterminated,
        }
    }

    /// Whether the trace looks healthy: nothing blocked, nothing
    /// hanging.
    pub fn is_clean(&self) -> bool {
        self.blocked_receives.is_empty() && self.unterminated.is_empty()
    }
}

impl fmt::Display for DebugReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() && self.lost_sends.is_empty() {
            return writeln!(
                f,
                "no anomalies: all receives completed, all processes terminated"
            );
        }
        for b in &self.blocked_receives {
            writeln!(
                f,
                "BLOCKED: {} receiving on socket {} since t={} ms (event #{})",
                b.proc, b.sock, b.since_ms, b.idx
            )?;
        }
        if !self.lost_sends.is_empty() {
            writeln!(f, "LOST: {} sends never received", self.lost_sends.len())?;
        }
        for u in &self.unterminated {
            writeln!(
                f,
                "UNTERMINATED: {} last seen at t={} ms (event #{})",
                u.proc, u.last_ms, u.last_idx
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Trace;

    const HUNG: &str = "\
event=send machine=0 cpuTime=1 procTime=0 traceType=1 pid=1 pc=1 sock=3 msgLength=10 destName=inet:1:53
event=receivecall machine=1 cpuTime=5 procTime=0 traceType=2 pid=2 pc=1 sock=7
event=termproc machine=0 cpuTime=9 procTime=0 traceType=10 pid=1 pc=2 reason=0
";

    #[test]
    fn detects_the_classic_hang() {
        // The datagram was lost; process 2 blocks in receive forever.
        let t = Trace::parse(HUNG);
        let p = Pairing::analyze(&t);
        let r = DebugReport::analyze(&t, &p);
        assert_eq!(r.blocked_receives.len(), 1);
        assert_eq!(r.blocked_receives[0].proc, ProcKey { machine: 1, pid: 2 });
        assert_eq!(r.blocked_receives[0].sock, 7);
        assert_eq!(r.lost_sends, vec![0]);
        assert_eq!(r.unterminated.len(), 1, "process 2 never terminated");
        assert!(!r.is_clean());
        let shown = r.to_string();
        assert!(shown.contains("BLOCKED"));
        assert!(shown.contains("LOST"));
        assert!(shown.contains("UNTERMINATED"));
    }

    #[test]
    fn completed_receive_clears_the_call() {
        let log = "\
event=receivecall machine=0 cpuTime=1 procTime=0 traceType=2 pid=1 pc=1 sock=3
event=receive machine=0 cpuTime=2 procTime=0 traceType=3 pid=1 pc=1 sock=3 msgLength=4 sourceName=inet:1:9
";
        let t = Trace::parse(log);
        let p = Pairing::analyze(&t);
        let r = DebugReport::analyze(&t, &p);
        assert!(r.blocked_receives.is_empty());
    }

    #[test]
    fn calls_complete_fifo_per_socket() {
        let log = "\
event=receivecall machine=0 cpuTime=1 procTime=0 traceType=2 pid=1 pc=1 sock=3
event=receivecall machine=0 cpuTime=2 procTime=0 traceType=2 pid=1 pc=2 sock=3
event=receive machine=0 cpuTime=3 procTime=0 traceType=3 pid=1 pc=1 sock=3 msgLength=4 sourceName=inet:1:9
";
        let t = Trace::parse(log);
        let p = Pairing::analyze(&t);
        let r = DebugReport::analyze(&t, &p);
        assert_eq!(r.blocked_receives.len(), 1);
        assert_eq!(r.blocked_receives[0].idx, 1, "the second call is pending");
    }

    #[test]
    fn no_term_records_means_no_unterminated_verdicts() {
        let log = "\
event=send machine=0 cpuTime=1 procTime=0 traceType=1 pid=1 pc=1 sock=3 msgLength=1 destName=inet:1:9
";
        let t = Trace::parse(log);
        let p = Pairing::analyze(&t);
        let r = DebugReport::analyze(&t, &p);
        assert!(r.unterminated.is_empty(), "termproc was not metered");
    }

    #[test]
    fn clean_trace_reports_clean() {
        let log = "\
event=receivecall machine=0 cpuTime=1 procTime=0 traceType=2 pid=1 pc=1 sock=3
event=receive machine=0 cpuTime=2 procTime=0 traceType=3 pid=1 pc=1 sock=3 msgLength=4 sourceName=inet:1:9
event=termproc machine=0 cpuTime=3 procTime=0 traceType=10 pid=1 pc=2 reason=0
";
        let t = Trace::parse(log);
        let p = Pairing::analyze(&t);
        let r = DebugReport::analyze(&t, &p);
        assert!(r.is_clean());
        assert!(r.to_string().contains("no anomalies"));
    }
}
