//! Typed view of a trace log.
//!
//! "The analysis routines provide the means for interpreting the
//! traces created by filters. They give meaning to the data by
//! summarizing and operating on the event records collected." (§3.3)
//!
//! This module turns the filter's textual log records back into typed
//! [`Event`]s. A process is identified by `(machine, pid)` because pid
//! uniqueness is per machine in 4.2BSD.

use dpm_filter::{Descriptions, LogRecord};
use dpm_logstore::{Frame, StoreReader};
use std::fmt;

/// Identifies a process across the whole computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcKey {
    /// Machine (host id).
    pub machine: u32,
    /// Process id on that machine.
    pub pid: u32,
}

impl fmt::Display for ProcKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}:p{}", self.machine, self.pid)
    }
}

/// What happened, typed per event kind. Name fields hold the display
/// form of socket names (e.g. `inet:1:1701`); `None` when the trace
/// record carried no name (stream sends) or the field was discarded by
/// the filter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A message was sent.
    Send {
        /// Payload length.
        len: u32,
        /// Destination name (datagrams only).
        dest: Option<String>,
    },
    /// A receive was requested (may have blocked).
    RecvCall,
    /// A message was received.
    Recv {
        /// Payload length.
        len: u32,
        /// Source name (datagrams only).
        source: Option<String>,
    },
    /// A socket was created.
    Socket {
        /// Domain code (1 = UNIX, 2 = Internet).
        domain: u32,
        /// Type code (1 = stream, 2 = datagram).
        sock_type: u32,
    },
    /// A descriptor was duplicated.
    Dup {
        /// The duplicate socket (same file-table entry).
        new_sock: u32,
    },
    /// A socket was closed.
    DestSocket,
    /// The process forked.
    Fork {
        /// The child's pid.
        child: u32,
    },
    /// A connection was accepted.
    Accept {
        /// The new connection socket.
        new_sock: u32,
        /// Name bound to the accepting socket.
        sock_name: Option<String>,
        /// Name bound to the connecting socket.
        peer_name: Option<String>,
    },
    /// A connection was initiated.
    Connect {
        /// Name bound to the connecting socket.
        sock_name: Option<String>,
        /// Name bound to the accepting socket.
        peer_name: Option<String>,
    },
    /// The process terminated (0 = normal, 1 = killed).
    Term {
        /// Termination reason code.
        reason: u32,
    },
}

impl EventKind {
    /// The event name as it appears in the log.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Send { .. } => "send",
            EventKind::RecvCall => "receivecall",
            EventKind::Recv { .. } => "receive",
            EventKind::Socket { .. } => "socket",
            EventKind::Dup { .. } => "dup",
            EventKind::DestSocket => "destsocket",
            EventKind::Fork { .. } => "fork",
            EventKind::Accept { .. } => "accept",
            EventKind::Connect { .. } => "connect",
            EventKind::Term { .. } => "termproc",
        }
    }
}

/// One trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Index in the parsed trace (stable identifier for analyses).
    pub idx: usize,
    /// The process that produced the event.
    pub proc: ProcKey,
    /// Machine-local clock stamp, milliseconds. "The system clock time
    /// is useful for establishing the order of events on a particular
    /// machine" (§4.1) — *not* comparable across machines.
    pub cpu_time: u32,
    /// CPU time charged to the process, 10 ms granularity.
    pub proc_time: u32,
    /// The socket involved, when the event has one.
    pub sock: Option<u32>,
    /// The typed payload.
    pub kind: EventKind,
}

/// A parsed trace.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    /// Events in log order.
    pub events: Vec<Event>,
}

impl Trace {
    /// Parses a trace from the filter's log text. Records that lack
    /// the fields needed to type them (heavily `#`-reduced logs) are
    /// skipped; analyses degrade gracefully rather than failing.
    pub fn parse(log_text: &str) -> Trace {
        let records = LogRecord::parse_log(log_text);
        Trace::from_records(&records)
    }

    /// Builds a trace from already-parsed log records.
    pub fn from_records(records: &[LogRecord]) -> Trace {
        let mut t = Trace::default();
        for r in records {
            t.push_record(r);
        }
        t
    }

    /// Appends one decoded log record to the trace, typing it exactly
    /// as [`Trace::from_records`]/[`Trace::from_frames`] would. Returns
    /// whether the record produced an event (records that lack the
    /// fields needed to type them are skipped). This is the append
    /// primitive live consumers grow a trace with, one record at a
    /// time — a trace grown by `push_record` in record order is equal
    /// to the batch-built trace over the same records.
    pub fn push_record(&mut self, r: &LogRecord) -> bool {
        match typed_event(self.events.len(), r) {
            Some(ev) => {
                self.events.push(ev);
                true
            }
            None => false,
        }
    }

    /// Builds a trace straight from a binary log store, decoding each
    /// stored raw meter record with `desc` — no intermediate text log.
    /// Frames are consumed in arrival (sequence) order, so a
    /// store-backed filter and a text-backed filter over the same
    /// input yield the same trace.
    pub fn from_store(reader: &StoreReader, desc: &Descriptions) -> Trace {
        Trace::from_frames(reader.scan(), desc)
    }

    /// Builds a trace from a binary log store in *canonical* order:
    /// frames sorted by `(machine, pid, meter sequence, store
    /// sequence)` rather than arrival order. Two stores holding the
    /// same set of records — say, a flat filter's store and the root of
    /// a filter tree whose aggregates interleaved their children
    /// differently — yield byte-identical canonical traces.
    pub fn from_store_canonical(reader: &StoreReader, desc: &Descriptions) -> Trace {
        let mut frames: Vec<Frame<'_>> = reader.scan().collect();
        frames.sort_by_key(|f| {
            let meter_seq = dpm_filter::RecordView::new(f.raw).seq();
            (f.proc.machine, f.proc.pid, meter_seq, f.seq)
        });
        Trace::from_frames(frames, desc)
    }

    /// Builds a trace from an iterator of stored [`Frame`]s, in the
    /// iterator's order. Reduction (`#` discards) is deferred to read
    /// time by the store, so records are decoded in full; frames whose
    /// raw bytes no description matches are skipped, like unparseable
    /// text records.
    pub fn from_frames<'a, I>(frames: I, desc: &Descriptions) -> Trace
    where
        I: IntoIterator<Item = Frame<'a>>,
    {
        let mut t = Trace::default();
        for f in frames {
            let Some(rec) = LogRecord::from_raw(desc, f.raw, &[]) else {
                continue;
            };
            t.push_record(&rec);
        }
        t
    }

    /// The distinct processes, in first-appearance order.
    pub fn processes(&self) -> Vec<ProcKey> {
        let mut seen = Vec::new();
        for e in &self.events {
            if !seen.contains(&e.proc) {
                seen.push(e.proc);
            }
        }
        seen
    }

    /// The distinct machines, ascending.
    pub fn machines(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self.events.iter().map(|e| e.proc.machine).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Events of one process, in log order.
    pub fn of_process(&self, p: ProcKey) -> Vec<&Event> {
        self.events.iter().filter(|e| e.proc == p).collect()
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

fn opt_name(r: &LogRecord, field: &str) -> Option<String> {
    match r.get(field) {
        None | Some("-") => None,
        Some(v) => Some(v.to_owned()),
    }
}

fn typed_event(idx: usize, r: &LogRecord) -> Option<Event> {
    let machine = r.get_int("machine")? as u32;
    let pid = r.get_int("pid")? as u32;
    let cpu_time = r.get_int("cpuTime").unwrap_or(0) as u32;
    let proc_time = r.get_int("procTime").unwrap_or(0) as u32;
    let sock = r.get_int("sock").map(|v| v as u32);
    let kind = match r.event.as_str() {
        "send" => EventKind::Send {
            len: r.get_int("msgLength")? as u32,
            dest: opt_name(r, "destName"),
        },
        "receivecall" => EventKind::RecvCall,
        "receive" => EventKind::Recv {
            len: r.get_int("msgLength")? as u32,
            source: opt_name(r, "sourceName"),
        },
        "socket" => EventKind::Socket {
            domain: r.get_int("domain")? as u32,
            sock_type: r.get_int("type").or_else(|| r.get_int("traceType"))? as u32,
        },
        "dup" => EventKind::Dup {
            new_sock: r.get_int("newSock")? as u32,
        },
        "destsocket" => EventKind::DestSocket,
        "fork" => EventKind::Fork {
            child: r.get_int("newPid")? as u32,
        },
        "accept" => EventKind::Accept {
            new_sock: r.get_int("newSock")? as u32,
            sock_name: opt_name(r, "sockName"),
            peer_name: opt_name(r, "peerName"),
        },
        "connect" => EventKind::Connect {
            sock_name: opt_name(r, "sockName"),
            peer_name: opt_name(r, "peerName"),
        },
        "termproc" => EventKind::Term {
            reason: r.get_int("reason").unwrap_or(0) as u32,
        },
        _ => return None,
    };
    Some(Event {
        idx,
        proc: ProcKey { machine, pid },
        cpu_time,
        proc_time,
        sock,
        kind,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const LOG: &str = "\
event=socket machine=0 cpuTime=10 procTime=0 traceType=4 pid=100 pc=1 sock=1 domain=2 type=2 protocol=0
event=send machine=0 cpuTime=20 procTime=0 traceType=1 pid=100 pc=2 sock=1 msgLength=64 destName=inet:1:53
event=receivecall machine=1 cpuTime=5 procTime=0 traceType=2 pid=200 pc=1 sock=9
event=receive machine=1 cpuTime=30 procTime=10 traceType=3 pid=200 pc=1 sock=9 msgLength=64 sourceName=inet:0:1024
event=termproc machine=0 cpuTime=40 procTime=10 traceType=10 pid=100 pc=3 reason=0
";

    #[test]
    fn parses_typed_events() {
        let t = Trace::parse(LOG);
        assert_eq!(t.len(), 5);
        assert_eq!(
            t.events[1].kind,
            EventKind::Send {
                len: 64,
                dest: Some("inet:1:53".into())
            }
        );
        assert_eq!(
            t.events[3].proc,
            ProcKey {
                machine: 1,
                pid: 200
            }
        );
        assert_eq!(t.events[4].kind, EventKind::Term { reason: 0 });
    }

    #[test]
    fn processes_and_machines() {
        let t = Trace::parse(LOG);
        assert_eq!(
            t.processes(),
            vec![
                ProcKey {
                    machine: 0,
                    pid: 100
                },
                ProcKey {
                    machine: 1,
                    pid: 200
                }
            ]
        );
        assert_eq!(t.machines(), vec![0, 1]);
        assert_eq!(
            t.of_process(ProcKey {
                machine: 0,
                pid: 100
            })
            .len(),
            3
        );
    }

    #[test]
    fn dash_names_are_none() {
        let t = Trace::parse(
            "event=send machine=0 cpuTime=1 procTime=0 traceType=1 pid=1 pc=1 sock=1 msgLength=5 destName=-\n",
        );
        assert_eq!(t.events[0].kind, EventKind::Send { len: 5, dest: None });
    }

    #[test]
    fn unparseable_records_are_skipped() {
        let t = Trace::parse("event=send machine=0 pid=1\nevent=weird machine=0 pid=1\n");
        assert!(t.is_empty());
    }

    #[test]
    fn store_backed_trace_matches_text_backed_trace() {
        use dpm_logstore::{LogStore, MemBackend, StoreConfig};
        use dpm_meter::{
            MeterBody, MeterFork, MeterHeader, MeterMsg, MeterSendMsg, MeterTermProc, SockName,
            TermReason,
        };
        use std::sync::Arc;

        let msg = |machine: u16, cpu: u32, body: MeterBody| {
            MeterMsg {
                header: MeterHeader {
                    size: 0,
                    machine,
                    cpu_time: cpu,
                    seq: 0,
                    proc_time: 0,
                    trace_type: body.trace_type(),
                },
                body,
            }
            .encode()
        };
        let raws: Vec<Vec<u8>> = vec![
            msg(
                0,
                10,
                MeterBody::Send(MeterSendMsg {
                    pid: 100,
                    pc: 1,
                    sock: 3,
                    msg_length: 64,
                    dest_name: Some(SockName::inet(1, 53)),
                }),
            ),
            msg(
                1,
                20,
                MeterBody::Fork(MeterFork {
                    pid: 200,
                    pc: 2,
                    new_pid: 201,
                }),
            ),
            msg(
                0,
                30,
                MeterBody::TermProc(MeterTermProc {
                    pid: 100,
                    pc: 3,
                    reason: TermReason::Normal,
                }),
            ),
        ];
        let desc = Descriptions::standard();

        // Text path: render each record to a log line, then parse.
        let mut text = String::new();
        for raw in &raws {
            let rec = LogRecord::from_raw(&desc, raw, &[]).expect("decode");
            text.push_str(&rec.to_string());
            text.push('\n');
        }
        let from_text = Trace::parse(&text);

        // Store path: append the same raw records, read back, decode.
        let store = LogStore::open(Arc::new(MemBackend::new()), "/log", StoreConfig::default());
        let mut w = store.writer(0);
        for raw in &raws {
            w.append(raw);
        }
        w.flush();
        let reader = store.reader();
        let from_store = Trace::from_store(&reader, &desc);

        assert_eq!(from_store.len(), 3);
        assert_eq!(from_store, from_text);
    }
}
