//! Online per-process anomaly scoring.
//!
//! The scheme follows the syscall-count-vector idea (Dymshits,
//! Myara & Tolpin: per-process syscall count vectors over sliding
//! windows are enough to classify behavior online): each window, every
//! process is summarized as a vector of event-kind counts, compared
//! against an exponentially-weighted profile of that process's *own*
//! past windows. The normalized distance — `profile_dev` — flags a
//! process whose behavior changed shape (a stalled peer stops sending,
//! a duplicated meter doubles its counts).
//!
//! Profile deviation alone cannot localize every fault: when a
//! partition stalls two peers, *every* process's mix shifts a little
//! (replies stop arriving everywhere), and after normalization a busy
//! healthy process can out-score a quietly-stuck one. The decisive
//! signal for communication faults is **pairing lag** — unmatched
//! sends are exactly the messages the monitor saw leave but never saw
//! arrive, and they concentrate on the faulted processes. Each
//! process's share of the current unmatched sends (`lag_share`) is
//! therefore weighted into the score at twice the profile deviation
//! (deviation is bounded by 1, lag share by 1; weight 2 makes a
//! dominant lag share decisive while keeping deviation the tiebreak).

use dpm_analysis::{EventKind, ProcKey};
use std::collections::HashMap;

/// Number of event-kind buckets in a count vector (one per
/// [`EventKind`] variant).
pub const KIND_BUCKETS: usize = 10;

/// The count-vector bucket of an event kind. The mapping is stable —
/// scores and profiles are comparable across runs.
pub fn kind_bucket(kind: &EventKind) -> usize {
    match kind {
        EventKind::Send { .. } => 0,
        EventKind::RecvCall => 1,
        EventKind::Recv { .. } => 2,
        EventKind::Socket { .. } => 3,
        EventKind::Dup { .. } => 4,
        EventKind::DestSocket => 5,
        EventKind::Fork { .. } => 6,
        EventKind::Accept { .. } => 7,
        EventKind::Connect { .. } => 8,
        EventKind::Term { .. } => 9,
    }
}

/// One process's score for one window, with its components.
#[derive(Debug, Clone, PartialEq)]
pub struct AnomalyScore {
    /// The scored process.
    pub proc: ProcKey,
    /// `profile_dev + 2 × lag_share` (see the module docs).
    pub score: f64,
    /// Normalized distance of this window's count vector from the
    /// process's own EWMA profile, in `[0, 1)`.
    pub profile_dev: f64,
    /// This process's share of all currently-unmatched sends, in
    /// `[0, 1]`.
    pub lag_share: f64,
}

/// The online scorer: per-process EWMA profiles plus the per-window
/// scoring rule.
#[derive(Debug, Clone)]
pub struct AnomalyScorer {
    /// EWMA weight of the newest window in the profile.
    alpha: f64,
    profile: HashMap<ProcKey, [f64; KIND_BUCKETS]>,
    windows: u64,
}

impl Default for AnomalyScorer {
    fn default() -> AnomalyScorer {
        AnomalyScorer::new()
    }
}

fn l2(v: &[f64; KIND_BUCKETS]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

impl AnomalyScorer {
    /// A scorer with the default EWMA weight (0.4 — responsive but
    /// not dominated by any single window).
    pub fn new() -> AnomalyScorer {
        AnomalyScorer::with_alpha(0.4)
    }

    /// A scorer whose profiles give the newest window weight `alpha`.
    pub fn with_alpha(alpha: f64) -> AnomalyScorer {
        AnomalyScorer {
            alpha,
            profile: HashMap::new(),
            windows: 0,
        }
    }

    /// Windows scored so far.
    pub fn windows(&self) -> u64 {
        self.windows
    }

    /// Scores one window and folds it into the profiles. `counts` maps
    /// each process to its event-kind count vector for the window
    /// (processes known from earlier windows but absent here are
    /// scored against a zero vector — going quiet *is* a deviation);
    /// `unmatched` maps processes to their currently-unmatched send
    /// counts. Returns scores sorted descending (ties by process key
    /// for determinism).
    pub fn score_window(
        &mut self,
        counts: &HashMap<ProcKey, [f64; KIND_BUCKETS]>,
        unmatched: &HashMap<ProcKey, u64>,
    ) -> Vec<AnomalyScore> {
        let total_unmatched: u64 = unmatched.values().sum();
        let mut keys: Vec<ProcKey> = counts.keys().chain(self.profile.keys()).copied().collect();
        keys.sort();
        keys.dedup();
        let zero = [0.0; KIND_BUCKETS];
        let mut out = Vec::with_capacity(keys.len());
        for p in keys {
            let v = counts.get(&p).unwrap_or(&zero);
            let profile_dev = match self.profile.get(&p) {
                Some(prof) => {
                    let mut diff = [0.0; KIND_BUCKETS];
                    for i in 0..KIND_BUCKETS {
                        diff[i] = v[i] - prof[i];
                    }
                    l2(&diff) / (l2(prof) + l2(v) + 1.0)
                }
                // First sighting: no profile to deviate from yet.
                None => 0.0,
            };
            let lag_share = if total_unmatched == 0 {
                0.0
            } else {
                unmatched.get(&p).copied().unwrap_or(0) as f64 / total_unmatched as f64
            };
            out.push(AnomalyScore {
                proc: p,
                score: profile_dev + 2.0 * lag_share,
                profile_dev,
                lag_share,
            });
            // Update the profile after scoring, so a window never
            // explains itself away.
            let prof = self.profile.entry(p).or_insert(zero);
            for i in 0..KIND_BUCKETS {
                prof[i] = (1.0 - self.alpha) * prof[i] + self.alpha * v[i];
            }
        }
        self.windows += 1;
        out.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.proc.cmp(&b.proc))
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pk(machine: u32, pid: u32) -> ProcKey {
        ProcKey { machine, pid }
    }

    fn vec_with(sends: f64, recvs: f64) -> [f64; KIND_BUCKETS] {
        let mut v = [0.0; KIND_BUCKETS];
        v[0] = sends;
        v[2] = recvs;
        v
    }

    #[test]
    fn steady_behavior_scores_near_zero() {
        let mut s = AnomalyScorer::new();
        let counts: HashMap<_, _> = [(pk(1, 10), vec_with(8.0, 8.0))].into();
        let lag = HashMap::new();
        // EWMA warm-up: the profile needs a few windows to converge on
        // the steady vector.
        for _ in 0..3 {
            s.score_window(&counts, &lag);
        }
        for _ in 0..5 {
            let scores = s.score_window(&counts, &lag);
            assert!(scores[0].score < 0.2, "steady proc scored {scores:?}");
        }
    }

    #[test]
    fn going_quiet_deviates_from_profile() {
        let mut s = AnomalyScorer::new();
        let busy: HashMap<_, _> = [(pk(1, 10), vec_with(8.0, 8.0))].into();
        let lag = HashMap::new();
        for _ in 0..4 {
            s.score_window(&busy, &lag);
        }
        // The process disappears from the window entirely.
        let scores = s.score_window(&HashMap::new(), &lag);
        assert_eq!(scores.len(), 1, "known proc still scored");
        assert!(
            scores[0].profile_dev > 0.5,
            "quiet after busy must deviate: {scores:?}"
        );
    }

    #[test]
    fn lag_share_dominates_profile_deviation() {
        let mut s = AnomalyScorer::new();
        // Two processes with identical histories; one accumulates all
        // the unmatched sends.
        let counts: HashMap<_, _> = [
            (pk(1, 10), vec_with(8.0, 8.0)),
            (pk(2, 20), vec_with(8.0, 8.0)),
        ]
        .into();
        let lag = HashMap::new();
        for _ in 0..3 {
            s.score_window(&counts, &lag);
        }
        let lag: HashMap<_, _> = [(pk(2, 20), 6u64)].into();
        let scores = s.score_window(&counts, &lag);
        assert_eq!(scores[0].proc, pk(2, 20));
        assert!(scores[0].score > scores[1].score + 1.0, "{scores:?}");
    }

    #[test]
    fn scores_sort_deterministically() {
        let mut s = AnomalyScorer::new();
        let counts: HashMap<_, _> = [
            (pk(2, 20), vec_with(1.0, 1.0)),
            (pk(1, 10), vec_with(1.0, 1.0)),
        ]
        .into();
        let scores = s.score_window(&counts, &HashMap::new());
        assert_eq!(scores[0].proc, pk(1, 10), "tie broken by key");
    }
}
