//! Watch windows over a live trace.
//!
//! A [`LiveWatch`] owns a [`LiveTrace`] plus an [`AnomalyScorer`] and
//! carves the applied event stream into consecutive windows: each
//! [`LiveWatch::close_window`] summarizes everything applied since the
//! previous close — new records, active processes, pairing lag, the
//! lag's per-link distribution, and the anomaly scores — as one
//! [`WindowSnapshot`]. Window boundaries are wherever the consumer
//! closes them (the controller's `watch` closes one per poll
//! interval), so window semantics are: *events by application order,
//! not wall time*; a window is simply the delta between two asks.

use crate::anomaly::{kind_bucket, AnomalyScore, AnomalyScorer, KIND_BUCKETS};
use crate::engine::LiveTrace;
use dpm_analysis::{host_of, EventKind, Pairing, ProcKey, Trace};
use dpm_filter::Descriptions;
use dpm_logstore::OwnedFrame;
use std::collections::HashMap;

/// Summary of one closed watch window.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSnapshot {
    /// Window ordinal, from 0.
    pub window: u64,
    /// Events applied in total, through this window's close.
    pub records: u64,
    /// Events applied within this window.
    pub new_records: u64,
    /// Cumulative frames dropped by the meter-seq dedup.
    pub duplicates: u64,
    /// Distinct processes observed so far.
    pub procs: usize,
    /// Processes with at least one event in this window, sorted.
    pub active: Vec<ProcKey>,
    /// Matched messages, cumulative.
    pub matched: u64,
    /// Currently-unmatched sends — the message-pairing lag: sends the
    /// monitor saw leave but has not (yet) seen arrive.
    pub unmatched_sends: u64,
    /// Currently-unmatched datagram receives.
    pub unmatched_recvs: u64,
    /// Unmatched datagram sends per undirected machine link, sorted
    /// by descending count: where the pairing lag concentrates.
    pub link_lag: Vec<(u32, u32, u64)>,
    /// Anomaly scores, sorted descending.
    pub anomalies: Vec<AnomalyScore>,
}

impl WindowSnapshot {
    /// One-line rendering for the controller transcript.
    pub fn summary(&self) -> String {
        format!(
            "w{}: records={} (+{}) procs={} active={} matched={} lag={} dups={}",
            self.window,
            self.records,
            self.new_records,
            self.procs,
            self.active.len(),
            self.matched,
            self.unmatched_sends,
            self.duplicates
        )
    }
}

/// Distribution of the pairing lag over machine links: every
/// currently-unmatched *datagram* send whose destination names a
/// machine counts against the undirected link between the sender's
/// machine and that destination machine. Sorted by descending count
/// (ties by link, for determinism). This is the live localizer for
/// partition-like faults — the cut link's count runs away from every
/// healthy link's transient in-flight lag.
pub fn link_lag(trace: &Trace, pairing: &Pairing) -> Vec<(u32, u32, u64)> {
    let mut counts: HashMap<(u32, u32), u64> = HashMap::new();
    for &idx in &pairing.unmatched_sends {
        let ev = &trace.events[idx];
        let EventKind::Send {
            dest: Some(name), ..
        } = &ev.kind
        else {
            continue;
        };
        let Some(dest_machine) = host_of(name) else {
            continue;
        };
        let a = ev.proc.machine.min(dest_machine);
        let b = ev.proc.machine.max(dest_machine);
        *counts.entry((a, b)).or_default() += 1;
    }
    let mut out: Vec<(u32, u32, u64)> = counts.into_iter().map(|((a, b), n)| (a, b, n)).collect();
    out.sort_by(|x, y| y.2.cmp(&x.2).then((x.0, x.1).cmp(&(y.0, y.1))));
    out
}

/// A live trace plus windowing state and an online anomaly scorer.
#[derive(Debug)]
pub struct LiveWatch {
    lt: LiveTrace,
    scorer: AnomalyScorer,
    /// Trace length at the previous window close.
    mark: usize,
    window_no: u64,
}

impl LiveWatch {
    /// A watch over an empty live trace.
    pub fn new(desc: Descriptions) -> LiveWatch {
        LiveWatch {
            lt: LiveTrace::new(desc),
            scorer: AnomalyScorer::new(),
            mark: 0,
            window_no: 0,
        }
    }

    /// Ingests a batch of frames (see [`LiveTrace::ingest_batch`]).
    pub fn ingest_batch<I: IntoIterator<Item = OwnedFrame>>(&mut self, frames: I) {
        self.lt.ingest_batch(frames);
    }

    /// The underlying live trace.
    pub fn live(&self) -> &LiveTrace {
        &self.lt
    }

    /// The underlying live trace, mutably (for on-demand analyses).
    pub fn live_mut(&mut self) -> &mut LiveTrace {
        &mut self.lt
    }

    /// Windows closed so far.
    pub fn windows(&self) -> u64 {
        self.window_no
    }

    /// Closes the current window: summarizes everything applied since
    /// the previous close, scores it, and starts the next window.
    pub fn close_window(&mut self) -> WindowSnapshot {
        let close_began = dpm_telemetry::now_us();
        // Per-process count vectors over this window's events.
        let mut counts: HashMap<ProcKey, [f64; KIND_BUCKETS]> = HashMap::new();
        let events = &self.lt.trace().events[self.mark..];
        for ev in events {
            counts.entry(ev.proc).or_insert([0.0; KIND_BUCKETS])[kind_bucket(&ev.kind)] += 1.0;
        }
        let mut active: Vec<ProcKey> = counts.keys().copied().collect();
        active.sort();
        let new_records = events.len() as u64;

        // Pairing-derived parts (memoized inside the live trace).
        let (trace, pairing) = self.lt.trace_and_pairing();
        let mut unmatched_by_proc: HashMap<ProcKey, u64> = HashMap::new();
        for &idx in &pairing.unmatched_sends {
            *unmatched_by_proc.entry(trace.events[idx].proc).or_default() += 1;
        }
        let links = link_lag(trace, pairing);
        let matched = pairing.messages.len() as u64;
        let unmatched_sends = pairing.unmatched_sends.len() as u64;
        let unmatched_recvs = pairing.unmatched_recvs.len() as u64;

        let anomalies = self.scorer.score_window(&counts, &unmatched_by_proc);

        let snap = WindowSnapshot {
            window: self.window_no,
            records: self.lt.len() as u64,
            new_records,
            duplicates: self.lt.duplicates(),
            procs: self.lt.procs().len(),
            active,
            matched,
            unmatched_sends,
            unmatched_recvs,
            link_lag: links,
            anomalies,
        };
        self.mark = self.lt.len();
        self.window_no += 1;
        let r = dpm_telemetry::registry();
        r.histogram("live", "window_close_us", "")
            .record(dpm_telemetry::now_us().saturating_sub(close_began));
        // Age of the newest applied frame at window close: the end of
        // the append→window leg of the end-to-end staleness chain.
        if self.lt.last_ts_us() > 0 {
            r.histogram("e2e", "append_to_window_us", "")
                .record(dpm_telemetry::now_us().saturating_sub(self.lt.last_ts_us()));
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_logstore::ProcId;

    fn send_frame(
        seq: u64,
        machine: u16,
        pid: u32,
        meter_seq: u32,
        len: u32,
        dest: u32,
    ) -> OwnedFrame {
        use dpm_meter::{MeterBody, MeterHeader, MeterMsg, MeterSendMsg, SockName};
        let body = MeterBody::Send(MeterSendMsg {
            pid,
            pc: 1,
            sock: 3,
            msg_length: len,
            dest_name: Some(SockName::inet(dest, 53)),
        });
        let raw = MeterMsg {
            header: MeterHeader {
                size: 0,
                machine,
                cpu_time: seq as u32,
                seq: meter_seq,
                proc_time: 0,
                trace_type: body.trace_type(),
            },
            body,
        }
        .encode();
        OwnedFrame {
            seq,
            ts_us: seq,
            shard: 0,
            proc: ProcId { machine, pid },
            raw,
        }
    }

    fn recv_frame(
        seq: u64,
        machine: u16,
        pid: u32,
        meter_seq: u32,
        len: u32,
        src: u32,
    ) -> OwnedFrame {
        use dpm_meter::{MeterBody, MeterHeader, MeterMsg, MeterRecvMsg, SockName};
        let body = MeterBody::Recv(MeterRecvMsg {
            pid,
            pc: 1,
            sock: 7,
            msg_length: len,
            source_name: Some(SockName::inet(src, 1024)),
        });
        let raw = MeterMsg {
            header: MeterHeader {
                size: 0,
                machine,
                cpu_time: seq as u32,
                seq: meter_seq,
                proc_time: 0,
                trace_type: body.trace_type(),
            },
            body,
        }
        .encode();
        OwnedFrame {
            seq,
            ts_us: seq,
            shard: 0,
            proc: ProcId { machine, pid },
            raw,
        }
    }

    #[test]
    fn windows_summarize_deltas() {
        let mut w = LiveWatch::new(Descriptions::standard());
        w.ingest_batch([
            send_frame(0, 0, 10, 1, 20, 1),
            recv_frame(1, 1, 20, 1, 20, 0),
        ]);
        let s0 = w.close_window();
        assert_eq!(s0.window, 0);
        assert_eq!(s0.new_records, 2);
        assert_eq!(s0.records, 2);
        assert_eq!(s0.active.len(), 2);
        assert_eq!(s0.matched, 1);
        assert_eq!(s0.unmatched_sends, 0);
        // Nothing new: the next window is empty but cumulative fields
        // persist.
        let s1 = w.close_window();
        assert_eq!(s1.window, 1);
        assert_eq!(s1.new_records, 0);
        assert_eq!(s1.records, 2);
        assert!(s1.active.is_empty());
        assert!(s1.summary().contains("records=2 (+0)"));
    }

    #[test]
    fn link_lag_concentrates_on_the_faulted_link() {
        let mut w = LiveWatch::new(Descriptions::standard());
        // m0:p10 sends 5 datagrams to machine 2 that never arrive, and
        // one to machine 1 that does.
        let mut frames = Vec::new();
        for i in 0..5u64 {
            frames.push(send_frame(i, 0, 10, 1 + i as u32, 30 + i as u32, 2));
        }
        frames.push(send_frame(5, 0, 10, 6, 20, 1));
        frames.push(recv_frame(6, 1, 20, 1, 20, 0));
        w.ingest_batch(frames);
        let snap = w.close_window();
        assert_eq!(snap.unmatched_sends, 5);
        assert_eq!(snap.link_lag.first(), Some(&(0, 2, 5)));
        // The lagging proc tops the anomaly ranking.
        assert_eq!(
            snap.anomalies[0].proc,
            ProcKey {
                machine: 0,
                pid: 10
            }
        );
        assert!(snap.anomalies[0].lag_share > 0.99);
    }
}
