//! # dpm-live — live streaming analysis
//!
//! The batch analysis layer ([`dpm_analysis`]) answers questions about
//! a run *after* it ends: fetch the log, build a [`Trace`], pair the
//! messages, diff the clocks. This crate answers the same questions
//! *while the run is still going*, in the spirit of the paper's
//! real-time filter pipeline (Miller, Macrander & Sechrest, §4: the
//! filter "provides its client with a stream of data" as the
//! computation executes — analysis is not supposed to wait for the
//! program to finish).
//!
//! Three pieces:
//!
//! - [`LiveTrace`] ([`engine`]) — an incremental mirror of the batch
//!   pipeline. Frames arrive in batches, in any order within the
//!   global sequence space; a reorder buffer replays them in exactly
//!   the order the batch scan would, and every analysis
//!   ([`LiveTrace::pairing`], [`LiveTrace::hb`], [`LiveTrace::stats`])
//!   runs the *same* code path as its batch twin over
//!   incrementally-grown inputs. The invariant, property-tested in
//!   `tests/prop.rs`: at quiescence, a `LiveTrace` equals
//!   `Trace::from_store` plus batch analyses, field for field.
//! - [`LiveWatch`] ([`window`]) — windowing on top: each closed window
//!   yields a [`WindowSnapshot`] (new records, active processes,
//!   pairing lag and its per-link distribution via [`link_lag`]).
//! - [`AnomalyScorer`] ([`anomaly`]) — online per-process scoring:
//!   event-kind count vectors per window against an EWMA self-profile,
//!   plus each process's share of the unmatched-send lag. The top
//!   score localizes a stalled peer or cut link before the run ends.
//!
//! The controller's `watch` and `tail` commands drive this crate over
//! the log-store tail API ([`dpm_logstore::StoreTail`]).
//!
//! [`Trace`]: dpm_analysis::Trace

#![warn(missing_docs)]

pub mod anomaly;
pub mod engine;
pub mod window;

pub use anomaly::{kind_bucket, AnomalyScore, AnomalyScorer, KIND_BUCKETS};
pub use engine::LiveTrace;
pub use window::{link_lag, LiveWatch, WindowSnapshot};
