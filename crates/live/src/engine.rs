//! The incremental trace engine.
//!
//! [`LiveTrace`] is the streaming counterpart of the batch pipeline
//! `Trace::from_store` → `Pairing::analyze` → `HappensBefore::build` →
//! `CommStats::analyze`. It accepts stored frames as they appear (from
//! a [`StoreTail`](dpm_logstore::StoreTail) poll, in any interleaving
//! across segments) and maintains, incrementally:
//!
//! * the typed event list (each frame is decoded and appended once,
//!   O(1) amortized per frame);
//! * the pairing pass-1 queues ([`PairQueues`], O(1) per event);
//! * per-process counters and the send-size histogram (O(1) per
//!   event).
//!
//! The expensive constructions — message matching, the happens-before
//! relation, assembled statistics — are *memoized by version*: asking
//! for them re-derives only when events arrived since the last ask,
//! and the derivation goes through exactly the code paths the batch
//! analyses use ([`Pairing::from_queues`],
//! [`CommStats::with_proc_stats`]). That, plus the ordering discipline
//! below, yields the subsystem's central invariant:
//!
//! > **At quiescence (all frames of a store ingested), a `LiveTrace`'s
//! > trace, pairing, happens-before relation, and statistics are equal
//! > to the batch results over the same store.**
//!
//! Two ordering/dedup mechanisms make that hold:
//!
//! * **Seq reordering.** The store's arrival seq is dense (every shard
//!   writer draws from one shared counter), and the batch reader scans
//!   in ascending seq order. `LiveTrace` applies frames in exactly
//!   that order by holding early arrivals in a reorder buffer until
//!   the gap fills; a seq seen twice (a segment re-offered after a
//!   fetch hiccup) is dropped as a replay.
//! * **Meter-seq dedup.** Before decoding, each frame passes the same
//!   `(machine, pid, meter seq)` check the filter tree's aggregate
//!   merge applies, so a `LiveTrace` can consume any level of a filter
//!   tree — records duplicated across children are accepted exactly
//!   once. (Meter seq 0 — records predating the seq layer — is always
//!   accepted, as in the tree merge.)
//!
//! Why matching is re-derived rather than maintained per event: exact
//! datagram matching is *non-monotone* under growth. Receive groups
//! draw on overlapping candidate send pools through a shared
//! matched-set, so one new arrival can change which send an *earlier*
//! receive pairs with. Maintaining edges incrementally would have to
//! re-run matching anyway to stay exact; memoizing the full (cheap,
//! in-memory) pass keeps equality with the batch result by
//! construction. See DESIGN §13 for the worked counter-example.

use dpm_analysis::{CommStats, HappensBefore, PairQueues, Pairing, ProcKey, ProcStats, Trace};
use dpm_analysis::{EventKind, SizeHistogram};
use dpm_filter::{Descriptions, LogRecord, RecordView};
use dpm_logstore::OwnedFrame;
use dpm_telemetry::{Gauge, Histogram};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

/// Memoized derived analyses, valid for one trace version.
struct Cached {
    version: u64,
    pairing: Pairing,
    hb: HappensBefore,
    stats: CommStats,
}

/// An incrementally-grown trace with memoized derived analyses. See
/// the module docs for the invariant and the ordering discipline.
pub struct LiveTrace {
    desc: Descriptions,
    /// The filter-tree dedup discipline: `(machine, pid, meter seq)`.
    seen: HashSet<(u16, u32, u32)>,
    trace: Trace,
    queues: PairQueues,
    per_proc: HashMap<ProcKey, ProcStats>,
    sizes: SizeHistogram,
    /// Next store seq to apply; frames ahead of it wait in `reorder`.
    next_seq: u64,
    reorder: BTreeMap<u64, OwnedFrame>,
    /// Frames dropped by the meter-seq dedup.
    duplicates: u64,
    /// Frames dropped because their store seq was already applied.
    replays: u64,
    /// Frames whose raw bytes no description decoded.
    undecodable: u64,
    /// Bumped per applied event; keys the memo cache.
    version: u64,
    cache: Option<Cached>,
    /// Store timestamp (`ts_us`) of the newest applied frame.
    last_ts_us: u64,
    /// Self-telemetry: reorder-buffer occupancy (live/reorder_pending)
    /// and append→apply staleness (e2e/append_to_apply_us).
    tm_pending: Arc<Gauge>,
    tm_apply_lag: Arc<Histogram>,
}

impl std::fmt::Debug for LiveTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiveTrace")
            .field("events", &self.trace.len())
            .field("next_seq", &self.next_seq)
            .field("reorder_pending", &self.reorder.len())
            .field("duplicates", &self.duplicates)
            .finish()
    }
}

impl LiveTrace {
    /// An empty live trace decoding records with `desc`.
    pub fn new(desc: Descriptions) -> LiveTrace {
        LiveTrace {
            desc,
            seen: HashSet::new(),
            trace: Trace::default(),
            queues: PairQueues::default(),
            per_proc: HashMap::new(),
            sizes: SizeHistogram::default(),
            next_seq: 0,
            reorder: BTreeMap::new(),
            duplicates: 0,
            replays: 0,
            undecodable: 0,
            version: 0,
            cache: None,
            last_ts_us: 0,
            tm_pending: dpm_telemetry::registry().gauge("live", "reorder_pending", ""),
            tm_apply_lag: dpm_telemetry::registry().histogram("e2e", "append_to_apply_us", ""),
        }
    }

    /// Ingests one frame. Frames may arrive in any order; application
    /// happens in ascending store-seq order (see the module docs).
    pub fn ingest(&mut self, frame: OwnedFrame) {
        use std::cmp::Ordering;
        match frame.seq.cmp(&self.next_seq) {
            Ordering::Less => self.replays += 1,
            Ordering::Greater => {
                if self.reorder.insert(frame.seq, frame).is_some() {
                    self.replays += 1;
                }
            }
            Ordering::Equal => {
                self.apply(frame);
                self.next_seq += 1;
                while let Some(f) = self.reorder.remove(&self.next_seq) {
                    self.apply(f);
                    self.next_seq += 1;
                }
            }
        }
        self.tm_pending.set(self.reorder.len() as i64);
    }

    /// Ingests a batch of frames.
    pub fn ingest_batch<I: IntoIterator<Item = OwnedFrame>>(&mut self, frames: I) {
        for f in frames {
            self.ingest(f);
        }
    }

    /// Applies one frame in order: dedup, decode, append, fold into
    /// the incremental accumulators.
    fn apply(&mut self, frame: OwnedFrame) {
        // `ts_us` and `now_us()` share the telemetry epoch when the
        // store runs in-process, so the difference is the frame's age
        // at apply time: how far the live view trails the appended log.
        self.tm_apply_lag
            .record(dpm_telemetry::now_us().saturating_sub(frame.ts_us));
        self.last_ts_us = self.last_ts_us.max(frame.ts_us);
        if frame.raw.len() < dpm_filter::desc::HEADER_LEN {
            self.undecodable += 1;
            return;
        }
        let view = RecordView::new(&frame.raw);
        let key = (view.machine(), view.pid().unwrap_or(0), view.seq());
        if key.2 != 0 && !self.seen.insert(key) {
            self.duplicates += 1;
            return;
        }
        let Some(rec) = LogRecord::from_raw(&self.desc, &frame.raw, &[]) else {
            self.undecodable += 1;
            return;
        };
        if self.trace.push_record(&rec) {
            let ev = self.trace.events.last().expect("just pushed");
            self.queues.add(ev);
            self.per_proc.entry(ev.proc).or_default().record(ev);
            if let EventKind::Send { len, .. } = ev.kind {
                self.sizes.add(len);
            }
            self.version += 1;
        }
    }

    /// The typed events applied so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Events applied so far.
    pub fn len(&self) -> usize {
        self.trace.len()
    }

    /// Whether no event has been applied.
    pub fn is_empty(&self) -> bool {
        self.trace.is_empty()
    }

    /// The next store seq the engine is waiting for.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Frames buffered ahead of a seq gap.
    pub fn reorder_pending(&self) -> usize {
        self.reorder.len()
    }

    /// Store timestamp (`ts_us`, telemetry-epoch microseconds) of the
    /// newest applied frame — 0 before anything applies.
    pub fn last_ts_us(&self) -> u64 {
        self.last_ts_us
    }

    /// Frames dropped by the `(machine, pid, meter seq)` dedup.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Frames dropped because their store seq was already applied.
    pub fn replays(&self) -> u64 {
        self.replays
    }

    /// Frames whose raw bytes no description decoded.
    pub fn undecodable(&self) -> u64 {
        self.undecodable
    }

    /// The distinct processes observed, sorted.
    pub fn procs(&self) -> Vec<ProcKey> {
        let mut v: Vec<ProcKey> = self.per_proc.keys().copied().collect();
        v.sort();
        v
    }

    /// Monotone version counter: bumps once per applied event.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Re-derives the memoized analyses if events arrived since the
    /// last derivation.
    fn ensure(&mut self) {
        if self
            .cache
            .as_ref()
            .is_some_and(|c| c.version == self.version)
        {
            return;
        }
        let pairing = Pairing::from_queues(&self.trace, &self.queues);
        let hb = HappensBefore::build(&self.trace, &pairing);
        let stats = CommStats::with_proc_stats(
            self.per_proc.clone(),
            self.sizes.clone(),
            &self.trace,
            &pairing,
        );
        self.cache = Some(Cached {
            version: self.version,
            pairing,
            hb,
            stats,
        });
    }

    /// The pairing over everything applied so far (memoized).
    pub fn pairing(&mut self) -> &Pairing {
        self.ensure();
        &self.cache.as_ref().expect("ensured").pairing
    }

    /// The happens-before relation over everything applied so far
    /// (memoized).
    pub fn hb(&mut self) -> &HappensBefore {
        self.ensure();
        &self.cache.as_ref().expect("ensured").hb
    }

    /// Communication statistics over everything applied so far
    /// (memoized).
    pub fn stats(&mut self) -> &CommStats {
        self.ensure();
        &self.cache.as_ref().expect("ensured").stats
    }

    /// The trace and its pairing together (memoized) — for analyses
    /// that need to walk both without cloning.
    pub fn trace_and_pairing(&mut self) -> (&Trace, &Pairing) {
        self.ensure();
        (&self.trace, &self.cache.as_ref().expect("ensured").pairing)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A real encoded meter record (a termproc event).
    fn raw(machine: u16, pid: u32, meter_seq: u32) -> Vec<u8> {
        use dpm_meter::{MeterBody, MeterHeader, MeterMsg, MeterTermProc, TermReason};
        let body = MeterBody::TermProc(MeterTermProc {
            pid,
            pc: 1,
            reason: TermReason::Normal,
        });
        MeterMsg {
            header: MeterHeader {
                size: 0,
                machine,
                cpu_time: 1,
                seq: meter_seq,
                proc_time: 0,
                trace_type: body.trace_type(),
            },
            body,
        }
        .encode()
    }

    fn frame(seq: u64, raw: Vec<u8>) -> OwnedFrame {
        OwnedFrame {
            seq,
            ts_us: seq,
            shard: 0,
            proc: dpm_logstore::ProcId { machine: 0, pid: 0 },
            raw,
        }
    }

    #[test]
    fn out_of_order_frames_apply_in_seq_order() {
        let mut lt = LiveTrace::new(Descriptions::standard());
        lt.ingest(frame(2, raw(1, 100, 3)));
        lt.ingest(frame(1, raw(1, 100, 2)));
        assert_eq!(lt.len(), 0, "gap at seq 0 holds everything back");
        assert_eq!(lt.reorder_pending(), 2);
        lt.ingest(frame(0, raw(1, 100, 1)));
        assert_eq!(lt.len(), 3, "gap filled, reorder buffer drained");
        assert_eq!(lt.reorder_pending(), 0);
        assert_eq!(lt.next_seq(), 3);
    }

    #[test]
    fn replayed_store_seqs_are_dropped() {
        let mut lt = LiveTrace::new(Descriptions::standard());
        lt.ingest(frame(0, raw(1, 100, 1)));
        lt.ingest(frame(0, raw(1, 100, 1)));
        assert_eq!(lt.len(), 1);
        assert_eq!(lt.replays(), 1);
    }

    #[test]
    fn meter_seq_dedup_matches_tree_discipline() {
        let mut lt = LiveTrace::new(Descriptions::standard());
        // Same (machine, pid, meter seq) under two different store
        // seqs — e.g. a record that reached the root via two children.
        lt.ingest(frame(0, raw(1, 100, 7)));
        lt.ingest(frame(1, raw(1, 100, 7)));
        assert_eq!(lt.len(), 1, "duplicate meter record accepted once");
        assert_eq!(lt.duplicates(), 1);
        // Meter seq 0 is always accepted.
        let mut lt = LiveTrace::new(Descriptions::standard());
        lt.ingest(frame(0, raw(1, 100, 0)));
        lt.ingest(frame(1, raw(1, 100, 0)));
        assert_eq!(lt.len(), 2);
        assert_eq!(lt.duplicates(), 0);
    }

    #[test]
    fn memoized_analyses_recompute_only_on_growth() {
        let mut lt = LiveTrace::new(Descriptions::standard());
        lt.ingest(frame(0, raw(1, 100, 1)));
        let v = lt.version();
        assert_eq!(lt.stats().per_proc.len(), 1);
        assert_eq!(lt.version(), v, "asking for analyses applies nothing");
        lt.ingest(frame(1, raw(2, 200, 1)));
        assert_eq!(lt.stats().per_proc.len(), 2);
    }

    #[test]
    fn undecodable_frames_are_counted_not_fatal() {
        let mut lt = LiveTrace::new(Descriptions::standard());
        lt.ingest(frame(0, vec![0u8; 5]));
        assert_eq!(lt.len(), 0);
        assert_eq!(lt.undecodable(), 1);
        lt.ingest(frame(1, raw(1, 100, 1)));
        assert_eq!(lt.len(), 1, "stream continues past junk");
    }
}
