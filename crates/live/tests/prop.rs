//! The live subsystem's central property: feeding a store's frames to
//! a [`LiveTrace`] — in *any* chunking — yields, at quiescence, exactly
//! the batch results over the same store: the same trace, the same
//! pairing, the same happens-before relation, the same statistics.

use dpm_analysis::{CommStats, HappensBefore, Pairing, Trace};
use dpm_filter::Descriptions;
use dpm_live::LiveTrace;
use dpm_logstore::{Backend, LogStore, MemBackend, OwnedFrame, StoreConfig, StoreReader};
use dpm_meter::{MeterBody, MeterHeader, MeterMsg, MeterRecvMsg, MeterSendMsg, SockName};
use proptest::prelude::*;
use std::sync::Arc;

const DIR: &str = "/usr/tmp/log.prop";

fn encode(machine: u16, meter_seq: u32, cpu: u32, body: MeterBody) -> Vec<u8> {
    MeterMsg {
        header: MeterHeader {
            size: 0,
            machine,
            cpu_time: cpu,
            seq: meter_seq,
            proc_time: 0,
            trace_type: body.trace_type(),
        },
        body,
    }
    .encode()
}

fn send_rec(src: u32, dst: u32, len: u32, cpu: u32, meter_seq: u32) -> Vec<u8> {
    encode(
        src as u16,
        meter_seq,
        cpu,
        MeterBody::Send(MeterSendMsg {
            pid: 10 + src,
            pc: 0,
            sock: 3,
            msg_length: len,
            dest_name: Some(SockName::inet(dst, 53)),
        }),
    )
}

fn recv_rec(src: u32, dst: u32, len: u32, cpu: u32, meter_seq: u32) -> Vec<u8> {
    encode(
        dst as u16,
        meter_seq,
        cpu,
        MeterBody::Recv(MeterRecvMsg {
            pid: 10 + dst,
            pc: 0,
            sock: 7,
            msg_length: len,
            source_name: Some(SockName::inet(src, 1024)),
        }),
    )
}

/// A randomized paired datagram conversation among three machines
/// (the same regime `dpm-analysis`' pairing property tests use:
/// pairwise-distinct lengths, receives trailing their sends by
/// arbitrary spans, some messages lost), as raw meter records in
/// emission order.
fn arb_records() -> impl Strategy<Value = Vec<Vec<u8>>> {
    let msg = (0u32..3, 1u32..3, any::<bool>(), 0usize..4);
    proptest::collection::vec(msg, 1..25).prop_map(|plan| {
        let mut recs = Vec::new();
        let mut cpu = [0u32; 3];
        let mut meter_seq = [0u32; 3];
        let mut pending: Vec<(u32, u32, u32)> = Vec::new();
        for (k, (src, dstoff, deliver, flush)) in plan.iter().enumerate() {
            let (src, dst) = (*src, (*src + *dstoff) % 3);
            let len = 20 + k as u32; // pairwise-distinct
            cpu[src as usize] += 10;
            meter_seq[src as usize] += 1;
            recs.push(send_rec(
                src,
                dst,
                len,
                cpu[src as usize],
                meter_seq[src as usize],
            ));
            if *deliver {
                pending.push((src, dst, len));
            }
            for _ in 0..*flush {
                if pending.is_empty() {
                    break;
                }
                let (s, d, l) = pending.remove(0);
                cpu[d as usize] += 10;
                meter_seq[d as usize] += 1;
                recs.push(recv_rec(s, d, l, cpu[d as usize], meter_seq[d as usize]));
            }
        }
        for (s, d, l) in pending {
            cpu[d as usize] += 10;
            meter_seq[d as usize] += 1;
            recs.push(recv_rec(s, d, l, cpu[d as usize], meter_seq[d as usize]));
        }
        recs
    })
}

/// Writes the records into a small-segment two-shard store (machine
/// picks the shard, so rotation and shard interleaving are both
/// exercised) and returns its backend.
fn build_store(records: &[Vec<u8>]) -> Arc<MemBackend> {
    let backend = Arc::new(MemBackend::new());
    let store = LogStore::open(
        backend.clone(),
        DIR,
        StoreConfig {
            segment_bytes: 512,
            batch_bytes: 128,
            index_every: 4,
        },
    );
    let mut writers = [store.writer(0), store.writer(1)];
    for raw in records {
        let machine = u16::from_le_bytes([raw[4], raw[5]]);
        writers[(machine % 2) as usize].append(raw);
    }
    for w in &mut writers {
        w.flush();
    }
    backend
}

struct Batch {
    trace: Trace,
    pairing: Pairing,
    hb: HappensBefore,
    stats: CommStats,
}

fn batch_analyses(backend: &dyn Backend, desc: &Descriptions) -> Batch {
    let reader = StoreReader::load(backend, DIR);
    let trace = Trace::from_store(&reader, desc);
    let pairing = Pairing::analyze(&trace);
    let hb = HappensBefore::build(&trace, &pairing);
    let stats = CommStats::analyze(&trace, &pairing);
    Batch {
        trace,
        pairing,
        hb,
        stats,
    }
}

fn assert_live_equals_batch(lt: &mut LiveTrace, batch: &Batch) {
    assert_eq!(lt.trace(), &batch.trace, "trace differs");
    assert_eq!(lt.pairing(), &batch.pairing, "pairing differs");
    assert_eq!(lt.hb(), &batch.hb, "happens-before differs");
    assert_eq!(lt.stats(), &batch.stats, "stats differ");
}

proptest! {
    /// Any chunking of the store's frames — including asking for the
    /// analyses *between* chunks, which exercises the memo cache at
    /// every intermediate version — converges to the batch result.
    #[test]
    fn live_equals_batch_under_any_chunking(
        records in arb_records(),
        chunks in proptest::collection::vec(1usize..7, 0..40),
        peek in any::<bool>(),
    ) {
        let backend = build_store(&records);
        let desc = Descriptions::standard();
        let batch = batch_analyses(backend.as_ref(), &desc);

        let reader = StoreReader::load(backend.as_ref(), DIR);
        let frames: Vec<OwnedFrame> =
            reader.scan().map(|f| OwnedFrame::of(&f)).collect();
        prop_assert_eq!(frames.len(), records.len());

        let mut lt = LiveTrace::new(desc);
        let mut fed = 0;
        let mut chunks = chunks.into_iter();
        while fed < frames.len() {
            let n = chunks.next().unwrap_or(usize::MAX).min(frames.len() - fed);
            lt.ingest_batch(frames[fed..fed + n].iter().cloned());
            fed += n;
            if peek {
                // Intermediate asks must not disturb convergence.
                let _ = lt.pairing().messages.len();
            }
        }
        prop_assert_eq!(lt.reorder_pending(), 0);
        assert_live_equals_batch(&mut lt, &batch);
    }

    /// Frames delivered shard-by-shard (all of shard 1, then all of
    /// shard 0) arrive maximally out of seq order; the reorder buffer
    /// must hold and replay them into the exact batch order.
    #[test]
    fn live_equals_batch_under_shard_skewed_delivery(records in arb_records()) {
        let backend = build_store(&records);
        let desc = Descriptions::standard();
        let batch = batch_analyses(backend.as_ref(), &desc);

        let reader = StoreReader::load(backend.as_ref(), DIR);
        let mut frames: Vec<OwnedFrame> =
            reader.scan().map(|f| OwnedFrame::of(&f)).collect();
        // Shard 1 first, then shard 0; seq ascending within a shard.
        frames.sort_by_key(|f| (std::cmp::Reverse(f.shard), f.seq));

        let mut lt = LiveTrace::new(desc);
        lt.ingest_batch(frames);
        prop_assert_eq!(lt.reorder_pending(), 0);
        prop_assert_eq!(lt.replays(), 0);
        assert_live_equals_batch(&mut lt, &batch);
    }
}
