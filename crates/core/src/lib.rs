//! `dpm-core` — the distributed programs monitor, assembled.
//!
//! This crate wires the pieces of Miller, Macrander & Sechrest's
//! measurement system together in the configuration of Fig. 3.1: a
//! simulated multi-machine Berkeley UNIX 4.2BSD cluster with
//! kernel-resident metering ([`dpm_simos`]), a meterdaemon on every
//! machine ([`dpm_meterd`]), the standard filter ([`dpm_filter`]), the
//! interactive controller ([`dpm_controller`]), the analysis routines
//! ([`dpm_analysis`]), and the example computations
//! ([`dpm_workloads`]).
//!
//! # Quickstart
//!
//! ```
//! use dpm_core::Simulation;
//!
//! let sim = Simulation::builder()
//!     .machines(["yellow", "red", "green", "blue"])
//!     .seed(42)
//!     .build();
//! let mut control = sim.controller("yellow")?;
//! control.exec("filter f1 blue");
//! control.exec("newjob foo");
//! control.exec("addprocess foo red /bin/A green");
//! control.exec("addprocess foo green /bin/B");
//! control.exec("setflags foo send receive fork accept connect");
//! control.exec("startjob foo");
//! assert!(control.wait_job("foo", 30_000), "job completed");
//! let analysis = sim.analyze_log(&mut control, "f1");
//! assert!(analysis.stats.matched > 0);
//! control.exec("removejob foo");
//! control.exec("die");
//! sim.shutdown();
//! # Ok::<(), dpm_core::SysError>(())
//! ```

#![warn(missing_docs)]

pub use dpm_analysis as analysis;
pub use dpm_controller as controller;
pub use dpm_filter as filter;
pub use dpm_meter as meter;
pub use dpm_meterd as meterd;
pub use dpm_simnet as simnet;
pub use dpm_simos as simos;
pub use dpm_telemetry as telemetry;
pub use dpm_workloads as workloads;

pub use dpm_analysis::Analysis;
pub use dpm_controller::{Controller, ProcState};
pub use dpm_filter::{Descriptions, FilterEngine, LogRecord, Rules};
pub use dpm_meter::{MeterFlags, MeterMsg, SockName, TermReason};
pub use dpm_simnet::{ClockSpec, NetConfig};
pub use dpm_simos::{Cluster, ClusterConfig, CpuCosts, Pid, Proc, SysError, SysResult, Uid};

use std::sync::atomic::{AtomicU16, Ordering};
use std::sync::Arc;

/// Builder for a ready-to-measure [`Simulation`].
#[derive(Default)]
pub struct SimulationBuilder {
    machines: Vec<(String, Option<ClockSpec>)>,
    net: Option<NetConfig>,
    seed: Option<u64>,
    costs: Option<CpuCosts>,
    meter_buffer: Option<u32>,
    skip_workloads: bool,
    injector: Option<Arc<dyn dpm_simnet::FaultInjector>>,
}

impl std::fmt::Debug for SimulationBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimulationBuilder")
            .field("machines", &self.machines)
            .field("net", &self.net)
            .field("seed", &self.seed)
            .field("has_injector", &self.injector.is_some())
            .finish_non_exhaustive()
    }
}

impl SimulationBuilder {
    /// Adds machines by name.
    pub fn machines<'a>(mut self, names: impl IntoIterator<Item = &'a str>) -> Self {
        for n in names {
            self.machines.push((n.to_owned(), None));
        }
        self
    }

    /// Adds one machine with an explicit clock.
    pub fn machine_with_clock(mut self, name: &str, spec: ClockSpec) -> Self {
        self.machines.push((name.to_owned(), Some(spec)));
        self
    }

    /// Sets the network behaviour (default [`NetConfig::lan`]).
    pub fn net(mut self, net: NetConfig) -> Self {
        self.net = Some(net);
        self
    }

    /// Sets the randomness seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Sets the virtual CPU cost model.
    pub fn costs(mut self, costs: CpuCosts) -> Self {
        self.costs = Some(costs);
        self
    }

    /// Sets the kernel meter-buffer flush threshold.
    pub fn meter_buffer(mut self, msgs: u32) -> Self {
        self.meter_buffer = Some(msgs);
        self
    }

    /// Skips registering the example workload programs.
    pub fn without_workloads(mut self) -> Self {
        self.skip_workloads = true;
        self
    }

    /// Installs a fault injector (see [`dpm_simnet::FaultInjector`])
    /// consulted by the kernel's delivery paths — the hook a chaos
    /// plan uses to script drops, partitions and duplicated meter
    /// flushes. Without one, all hooks are no-ops.
    pub fn fault_injector(mut self, injector: Arc<dyn dpm_simnet::FaultInjector>) -> Self {
        self.injector = Some(injector);
        self
    }

    /// Builds the cluster, installs the standard filter program,
    /// starts a meterdaemon on every machine, and (unless disabled)
    /// registers the example workloads.
    ///
    /// # Panics
    ///
    /// Panics when no machines were added or a name repeats, as
    /// [`Cluster::builder`] does.
    pub fn build(self) -> Simulation {
        // A panicking component should leave its flight recorder
        // behind: the recent retries/heals/give-ups are the context a
        // post-mortem needs and are lost with the process otherwise.
        dpm_telemetry::install_panic_hook();
        let mut b = Cluster::builder();
        if let Some(net) = self.net {
            b = b.net(net);
        }
        if let Some(seed) = self.seed {
            b = b.seed(seed);
        }
        if let Some(costs) = self.costs {
            b = b.costs(costs);
        }
        if let Some(m) = self.meter_buffer {
            b = b.meter_buffer(m);
        }
        if let Some(inj) = self.injector {
            b = b.fault_injector(inj);
        }
        for (name, spec) in &self.machines {
            b = match spec {
                Some(s) => b.machine_with_clock(name, *s),
                None => b.machine(name),
            };
        }
        let cluster = b.build();
        dpm_filter::register_filter_program(&cluster);
        dpm_meterd::start_meterdaemons(&cluster);
        if !self.skip_workloads {
            dpm_workloads::register_all(&cluster);
        }
        Simulation {
            cluster,
            next_control_port: AtomicU16::new(5000),
        }
    }
}

/// A running measurement environment: cluster + daemons + programs.
#[derive(Debug)]
pub struct Simulation {
    cluster: Arc<Cluster>,
    next_control_port: AtomicU16,
}

impl Simulation {
    /// Starts building a simulation.
    pub fn builder() -> SimulationBuilder {
        SimulationBuilder::default()
    }

    /// A four-machine default (`yellow red green blue`), LAN network.
    pub fn standard() -> Simulation {
        Simulation::builder()
            .machines(["yellow", "red", "green", "blue"])
            .build()
    }

    /// The underlying cluster.
    pub fn cluster(&self) -> &Arc<Cluster> {
        &self.cluster
    }

    /// Starts a controller on `machine` as an ordinary user.
    ///
    /// # Errors
    ///
    /// `ENOENT` for an unknown machine; socket errors propagate.
    pub fn controller(&self, machine: &str) -> SysResult<Controller> {
        self.controller_as(machine, Uid(100))
    }

    /// Starts a controller on `machine` as `uid`.
    ///
    /// # Errors
    ///
    /// As [`Simulation::controller`].
    pub fn controller_as(&self, machine: &str, uid: Uid) -> SysResult<Controller> {
        let port = self.next_control_port.fetch_add(1, Ordering::Relaxed);
        Controller::start(&self.cluster, machine, uid, port)
    }

    /// Reads a file from the controller's machine — e.g. a trace
    /// retrieved with `getlog`.
    pub fn local_file(&self, control: &Controller, path: &str) -> Option<Vec<u8>> {
        self.cluster
            .machine(control.machine())
            .and_then(|m| m.fs().read(path))
    }

    /// Retrieves a filter's trace once it has *stabilized*: meter
    /// buffers flush and filter processes append asynchronously, so
    /// the log is fetched repeatedly until two reads a moment apart
    /// agree (or a few seconds pass).
    pub fn stable_log(&self, control: &mut Controller, filter: &str) -> String {
        let dest = format!("/tmp/getlog.{filter}");
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        let mut last: Option<Vec<u8>> = None;
        loop {
            control.exec(&format!("getlog {filter} {dest}"));
            let now = self.local_file(control, &dest).unwrap_or_default();
            let stable = !now.is_empty() && last.as_deref() == Some(&now[..]);
            if stable || std::time::Instant::now() > deadline {
                return String::from_utf8_lossy(&now).into_owned();
            }
            last = Some(now);
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
    }

    /// Retrieves and analyzes the trace of a filter in one step:
    /// stabilized `getlog` through the controller, then every
    /// analysis.
    pub fn analyze_log(&self, control: &mut Controller, filter: &str) -> Analysis {
        let text = self.stable_log(control, filter);
        Analysis::of_log(&text)
    }

    /// Kills every process and joins all threads.
    pub fn shutdown(&self) {
        self.cluster.shutdown();
    }
}
