//! End-to-end checks of the hierarchical filter tree (E9).
//!
//! Part 1 measures the tentpole claim: on a wide-fanout cluster (8
//! worker machines + a hub), sending every worker's meter stream
//! across the network to one flat filter costs several times the
//! cross-network bytes of the tree arrangement, where an edge
//! pre-filter on each worker applies the selection templates locally
//! and only accepted records travel to the hub's aggregate. Both
//! arrangements must also agree on the result: the root store's
//! canonical trace is byte-identical to the flat filter's.
//!
//! Part 2 drives the same shape through the control plane: a session
//! with `filter root … role=aggregate`, two `role=edge` filters naming
//! it as `upstream=`, a metered job whose machines carry edges, and
//! the analysis built from the root store.

use dpm::bench_report::BenchEntry;
use dpm::crates::analysis::{Analysis, Trace};
use dpm::crates::filter::{filter_main, FilterEngine};
use dpm::crates::logstore::StoreReader;
use dpm::crates::meter::{MeterBody, MeterFork, MeterHeader, MeterMsg, MeterSendMsg, SockName};
use dpm::{
    Cluster, Descriptions, LogRecord, NetConfig, Proc, Rules, Simulation, SysError, SysResult, Uid,
};

const N_WORKERS: usize = 8;
const FLAT_PORT: u16 = 4700;
const AGG_PORT: u16 = 4701;
const EDGE_PORT: u16 = 4710;
const FLAT_LOG: &str = "/usr/tmp/log.flat";
const TREE_LOG: &str = "/usr/tmp/log.tree";
/// Selection: keep only send records (`type=1`); the streams below are
/// mostly forks, so selection discards the bulk of every stream.
const SELECTIVE: &str = "type=1\n";

fn worker_name(i: usize) -> String {
    format!("w{i}")
}

fn msg(machine: u16, seq: u32, body: MeterBody) -> Vec<u8> {
    MeterMsg {
        header: MeterHeader {
            size: 0,
            machine,
            cpu_time: 1_000 + seq,
            seq,
            proc_time: 0,
            trace_type: body.trace_type(),
        },
        body,
    }
    .encode()
}

/// Worker `i`'s synthetic meter stream: 40 records with increasing
/// sequence numbers, one send in eight, the rest forks. The selective
/// templates keep only the sends.
fn stream_for(i: usize) -> Vec<u8> {
    let machine = i as u16 + 1;
    let pid = 1_000 + i as u32;
    let mut wire = Vec::new();
    for n in 0..40u32 {
        let body = if n % 8 == 0 {
            MeterBody::Send(MeterSendMsg {
                pid,
                pc: 7,
                sock: 3,
                msg_length: 64 + n,
                dest_name: Some(SockName::inet(2, 99)),
            })
        } else {
            MeterBody::Fork(MeterFork {
                pid,
                pc: 8,
                new_pid: 2_000 + n,
            })
        };
        wire.extend_from_slice(&msg(machine, n + 1, body));
    }
    wire
}

fn connect_with_retry(p: &Proc, host: &str, port: u16) -> SysResult<dpm::crates::simos::Fd> {
    let mut tries = 0;
    loop {
        let s = p.socket(
            dpm::crates::simos::Domain::Inet,
            dpm::crates::simos::SockType::Stream,
        )?;
        match p.connect_host(s, host, port) {
            Ok(()) => return Ok(s),
            Err(SysError::Econnrefused) if tries < 500 => {
                let _ = p.close(s);
                tries += 1;
                p.sleep_ms(2)?;
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            Err(e) => {
                let _ = p.close(s);
                return Err(e);
            }
        }
    }
}

/// Loads the store under `dir` on `m` through the directory-listing
/// API — discovery by listing, not by probing dense segment names.
fn read_store(m: &std::sync::Arc<dpm::crates::simos::Machine>, dir: &str) -> StoreReader {
    StoreReader::load(
        &dpm::crates::filter::SimFsBackend::new(std::sync::Arc::clone(m)),
        dir,
    )
}

/// Renders a store's records as log text in *canonical* order —
/// `(machine, pid, meter seq, store seq)` — so two stores holding the
/// same record set render identically no matter how arrivals
/// interleaved.
fn render_canonical(reader: &StoreReader, desc: &Descriptions) -> String {
    let mut frames: Vec<_> = reader.scan().collect();
    frames.sort_by_key(|f| {
        let meter_seq = dpm::crates::filter::RecordView::new(f.raw).seq();
        (f.proc.machine, f.proc.pid, meter_seq, f.seq)
    });
    let mut out = String::new();
    for f in frames {
        if let Some(rec) = LogRecord::from_raw(desc, f.raw, &[]) {
            out.push_str(&rec.to_string());
            out.push('\n');
        }
    }
    out
}

/// Runs one phase: spawn `sources` (one per worker) aiming at their
/// phase's filter, wait for them, then wait until `store_on`'s store
/// at `dir` holds `expected` records. Returns the phase's cross-
/// machine byte delta.
fn run_sources(
    c: &std::sync::Arc<Cluster>,
    target: impl Fn(usize) -> (String, u16),
    store_on: &std::sync::Arc<dpm::crates::simos::Machine>,
    dir: &str,
    expected: u64,
) -> u64 {
    let before = c.wire_stats().snapshot();
    let mut pids = Vec::new();
    for i in 0..N_WORKERS {
        let (host, port) = target(i);
        let pid = c
            .spawn_user(&worker_name(i), &format!("src{i}"), Uid(7), move |p| {
                let wire = stream_for(i);
                let s = connect_with_retry(&p, &host, port)?;
                for chunk in wire.chunks(113) {
                    p.write(s, chunk)?;
                }
                p.close(s)?;
                Ok(())
            })
            .expect("spawn source");
        pids.push((i, pid));
    }
    for (i, pid) in pids {
        let m = c.machine(&worker_name(i)).expect("worker exists");
        m.wait_exit(pid);
    }
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        let n = read_store(store_on, dir).n_records();
        if n == expected {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "store {dir} never reached {expected} records (has {n})"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    c.wire_stats().snapshot().since(&before).cross_bytes
}

#[test]
fn tree_cuts_cross_network_bytes_and_preserves_the_trace() {
    let mut b = Cluster::builder().net(NetConfig::ideal()).seed(77);
    b = b.machine("hub");
    for i in 0..N_WORKERS {
        b = b.machine(&worker_name(i));
    }
    let c = b.build();
    let hub = c.machine("hub").expect("hub exists");

    // The selection templates live on every machine that filters:
    // the hub (flat phase) and the workers (edge phase). The
    // aggregate gets no template file, so it keeps everything its
    // already-selective children forward.
    hub.fs()
        .write("templates.sel", SELECTIVE.as_bytes().to_vec());
    for i in 0..N_WORKERS {
        let m = c.machine(&worker_name(i)).expect("worker exists");
        m.fs().write("templates.sel", SELECTIVE.as_bytes().to_vec());
    }

    // Reference: what the selection keeps of each stream.
    let rules = Rules::parse(SELECTIVE).expect("selective rules parse");
    let mut expected = 0u64;
    for i in 0..N_WORKERS {
        let mut engine = FilterEngine::new(Descriptions::standard(), rules.clone());
        engine.feed_records(&stream_for(i), &mut |_view, _rec| expected += 1);
    }
    assert!(expected > 0, "selection keeps something");
    let total_bytes: usize = (0..N_WORKERS).map(|i| stream_for(i).len()).sum();

    // Phase A — flat: one store filter on the hub, every worker's
    // whole stream crosses the network to it.
    c.spawn_user("hub", "filter-flat", Uid::ROOT, move |p| {
        filter_main(
            p,
            vec![
                format!("port={FLAT_PORT}"),
                format!("log={FLAT_LOG}"),
                "mode=store".to_owned(),
                "templates=templates.sel".to_owned(),
            ],
        )
    })
    .expect("spawn flat filter");
    let flat_cross = run_sources(
        &c,
        |_| ("hub".to_owned(), FLAT_PORT),
        &hub,
        FLAT_LOG,
        expected,
    );

    // Phase B — tree: an aggregate on the hub, an edge pre-filter on
    // every worker; only records the selection accepts cross the
    // network.
    c.spawn_user("hub", "filter-agg", Uid::ROOT, move |p| {
        filter_main(
            p,
            vec![
                format!("port={AGG_PORT}"),
                format!("log={TREE_LOG}"),
                "mode=store".to_owned(),
                "role=aggregate".to_owned(),
            ],
        )
    })
    .expect("spawn aggregate");
    for i in 0..N_WORKERS {
        c.spawn_user(&worker_name(i), &format!("edge{i}"), Uid::ROOT, move |p| {
            filter_main(
                p,
                vec![
                    format!("port={EDGE_PORT}"),
                    "role=edge".to_owned(),
                    format!("upstream=hub:{AGG_PORT}"),
                    "templates=templates.sel".to_owned(),
                ],
            )
        })
        .expect("spawn edge");
    }
    let tree_cross = run_sources(
        &c,
        |i| (worker_name(i), EDGE_PORT),
        &hub,
        TREE_LOG,
        expected,
    );

    // The tentpole claim: at least 3× fewer cross-network bytes.
    assert!(flat_cross as usize >= total_bytes, "flat sent every byte");
    assert!(tree_cross > 0, "tree sent the accepted records");
    let reduction = flat_cross as f64 / tree_cross as f64;
    assert!(
        reduction >= 3.0,
        "edge pre-filtering saved only {reduction:.2}x (flat {flat_cross}, tree {tree_cross})"
    );

    // Identity: the root store's canonical trace is byte-identical to
    // the flat filter's.
    let desc = Descriptions::standard();
    let flat_reader = read_store(&hub, FLAT_LOG);
    let tree_reader = read_store(&hub, TREE_LOG);
    let flat_text = render_canonical(&flat_reader, &desc);
    let tree_text = render_canonical(&tree_reader, &desc);
    assert!(!flat_text.is_empty(), "flat trace is non-empty");
    assert_eq!(flat_text, tree_text, "root trace differs from flat trace");
    assert_eq!(
        Trace::from_store_canonical(&flat_reader, &desc),
        Trace::from_store_canonical(&tree_reader, &desc),
    );

    let entry = BenchEntry::new("filter_tree")
        .int("machines", N_WORKERS as u64 + 1)
        .int("records_sent", (N_WORKERS * 40) as u64)
        .int("records_kept", expected)
        .int("flat_cross_bytes", flat_cross)
        .int("tree_cross_bytes", tree_cross)
        .num("reduction", reduction)
        .text(
            "note",
            "flat vs 2-level tree (8 edges + aggregate), selective templates keep 1-in-8 records",
        );
    dpm::bench_report::record(&entry).expect("bench snapshot written");

    c.shutdown();
}

#[test]
fn controller_session_with_filter_tree() {
    let sim = Simulation::builder()
        .machines(["yellow", "red", "green", "blue"])
        .seed(43)
        .build();
    let mut control = sim.controller("yellow").expect("controller");

    // Friendly errors name the bad key or value.
    let out = control.exec("filter bogus role=chief");
    assert!(out.contains("bad value 'chief' for key 'role'"), "{out}");
    let out = control.exec("filter bogus colour=red");
    assert!(out.contains("unknown key 'colour'"), "{out}");
    let out = control.exec("filter bogus role=edge");
    assert!(out.contains("requires key 'upstream'"), "{out}");
    let out = control.exec("help");
    assert!(out.contains("deprecated"), "help flags the positional form");

    // A two-level tree: a store-backed aggregate on blue, edges on the
    // two machines that will run metered processes.
    let out = control.exec("filter root blue role=aggregate log=store");
    assert!(out.contains("filter 'root' ... created"), "{out}");
    let out = control.exec("filter e1 red role=edge upstream=root");
    assert!(out.contains("filter 'e1' ... created"), "{out}");
    let out = control.exec("filter e2 green role=edge upstream=root");
    assert!(out.contains("filter 'e2' ... created"), "{out}");
    let out = control.exec("filter");
    assert!(out.contains("role=aggregate"), "{out}");
    assert!(out.contains("role=edge"), "{out}");
    assert!(out.contains("upstream=blue:"), "{out}");

    // Edges keep no log; asking for one explains where to look.
    let out = control.exec("getlog e1 /tmp/nope");
    assert!(out.contains("edge pre-filter"), "{out}");
    let out = control.exec("check e1 mutex");
    assert!(out.contains("edge pre-filter"), "{out}");

    // A metered job on the edge machines: records flow A/B → local
    // edge → aggregate on blue.
    control.exec("newjob foo root");
    control.exec("addprocess foo red /bin/A green");
    control.exec("addprocess foo green /bin/B");
    control.exec("setflags foo send receive fork accept connect");
    control.exec("startjob foo");
    assert!(control.wait_job("foo", 60_000), "job foo completed");
    control.exec("removejob foo");

    // The root store has the whole job's trace, and the analysis
    // pairs the A→B traffic exactly as a flat filter would have.
    let text = sim.stable_log(&mut control, "root");
    assert!(!text.is_empty(), "root getlog produced a trace");
    let analysis = Analysis::of_log(&text);
    assert!(!analysis.trace.is_empty(), "trace has events");
    assert_eq!(analysis.pairing.connections.len(), 1, "one A→B connection");
    assert!(
        analysis.stats.matched >= 10,
        "request/reply traffic matched"
    );

    control.exec("bye");
    sim.shutdown();
}
