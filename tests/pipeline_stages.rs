//! Fig. 2.1 end to end: metering → filtering → analysis, with real
//! selection rules doing the reduction, over the staged pipeline
//! workload.

use dpm::crates::analysis::{Analysis, EventKind};
use dpm::Simulation;

fn run(templates: &str) -> Analysis {
    let sim = Simulation::builder()
        .machines(["yellow", "a", "b", "c"])
        .seed(9)
        .build();
    let mut control = sim.controller("yellow").expect("controller");
    sim.cluster()
        .machine("yellow")
        .unwrap()
        .fs()
        .write("templates", templates.as_bytes().to_vec());
    control.exec("filter f1 yellow /bin/filter descriptions templates");
    control.exec("newjob pipe");
    let hosts = ["a", "b", "c"];
    for (i, host) in hosts.iter().enumerate() {
        let next = if i + 1 < hosts.len() {
            hosts[i + 1]
        } else {
            "-"
        };
        control.exec(&format!(
            "addprocess pipe {host} /bin/stage {i} 3 {next} 12 1"
        ));
    }
    control.exec("setflags pipe all");
    control.exec("startjob pipe");
    assert!(control.wait_job("pipe", 60_000), "pipeline completed");
    control.exec("removejob pipe");
    let a = sim.analyze_log(&mut control, "f1");
    control.exec("die");
    sim.shutdown();
    a
}

#[test]
fn unfiltered_pipeline_trace_shows_three_stages() {
    let a = run("");
    let procs = a.structure.processes.len();
    assert_eq!(
        procs, 3,
        "three stages in the trace: {:?}",
        a.structure.processes
    );
    // Stage 0 → stage 1 → stage 2 communication edges exist.
    assert!(a.structure.edges.len() >= 2, "{:?}", a.structure.edges);
    // Items flow: every inter-stage send was received (streams). The
    // one permissible unmatched send is the sink's final write to its
    // redirected stdout, whose reader (the daemon gateway) is not
    // metered.
    assert!(
        a.pairing.unmatched_sends.len() <= 1,
        "unexpected losses: {:?}",
        a.pairing.unmatched_sends
    );
    // Termination records for all three stages.
    let terms = a
        .trace
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Term { .. }))
        .count();
    assert_eq!(terms, 3);
}

#[test]
fn selection_rules_reduce_the_trace() {
    // Keep only send events, and discard the pc field from them.
    let a = run("type=1, pc=#*\n");
    assert!(!a.trace.is_empty());
    assert!(
        a.trace
            .events
            .iter()
            .all(|e| matches!(e.kind, EventKind::Send { .. })),
        "only send records survive the template"
    );
}

#[test]
fn parallelism_analysis_sees_concurrent_stages() {
    let a = run("");
    // Once the pipe fills, stages work concurrently; busy time must
    // exceed what a single serial timeline would allow being *very*
    // conservative (the measure is 10ms-granular).
    let r = &a.parallelism;
    assert!(r.total_busy_ms > 0, "stages charged CPU");
    assert!(r.max_span_ms > 0);
    assert!(r.speedup() > 0.0);
}
