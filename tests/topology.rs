//! Fig. 3.1 / Fig. 3.5: the process structure of the measurement
//! system itself — meterdaemons everywhere, filters placeable on any
//! machine (including one disjoint from the computation), controller
//! on its own machine.

use dpm::crates::analysis::Analysis;
use dpm::Simulation;

#[test]
fn every_machine_runs_a_meterdaemon() {
    let sim = Simulation::builder()
        .machines(["one", "two", "three", "four", "five"])
        .seed(51)
        .build();
    // Evidence: a controller on any machine can reach the daemon on
    // every machine with a file-write RPC.
    let mut control = sim.controller("three").expect("controller");
    for m in ["one", "two", "three", "four", "five"] {
        // Creating a filter on a machine requires its daemon to
        // answer RPCs and write files there.
        let out = control.exec(&format!("filter f-{m} {m}"));
        assert!(out.contains("created"), "daemon on {m} answered: {out}");
        let machine = sim.cluster().machine(m).unwrap();
        assert!(
            machine.fs().exists("descriptions"),
            "daemon on {m} installed the descriptions file"
        );
    }
    control.exec("die");
    sim.shutdown();
}

#[test]
fn filter_may_run_disjoint_from_the_computation() {
    // "A filter process may execute on a machine that is disjoint from
    // the set of machines on which the processes of the computation
    // are executing." (§3.4)
    let sim = Simulation::builder()
        .machines(["console", "work1", "work2", "island"])
        .seed(52)
        .build();
    let mut control = sim.controller("console").expect("controller");
    control.exec("filter f1 island");
    control.exec("newjob foo");
    control.exec("addprocess foo work1 /bin/A work2");
    control.exec("addprocess foo work2 /bin/B");
    control.exec("setflags foo all");
    control.exec("startjob foo");
    assert!(control.wait_job("foo", 60_000), "job completed");
    control.exec("removejob foo");
    let a: Analysis = sim.analyze_log(&mut control, "f1");
    // The trace was collected on `island`, yet records come from the
    // two worker machines (host ids 1 and 2).
    assert_eq!(a.trace.machines(), vec![1, 2]);
    assert!(a.stats.matched > 0);
    control.exec("die");
    sim.shutdown();
}

#[test]
fn one_filter_can_collect_several_computations() {
    // "If desired, it is possible to have one filter collect data from
    // several computations." (§3.4)
    let sim = Simulation::builder()
        .machines(["console", "red", "green"])
        .seed(53)
        .build();
    let mut control = sim.controller("console").expect("controller");
    control.exec("filter shared console");
    control.exec("newjob one shared");
    control.exec("newjob two shared");
    control.exec("addprocess one red /bin/A green 1700 3");
    control.exec("addprocess one green /bin/B 1700");
    control.exec("addprocess two red /bin/A green 1701 3");
    control.exec("addprocess two green /bin/B 1701");
    control.exec("setflags one send receive accept connect");
    control.exec("setflags two send receive accept connect");
    control.exec("startjob one");
    control.exec("startjob two");
    assert!(control.wait_job("one", 60_000));
    assert!(control.wait_job("two", 60_000));
    control.exec("removejob one");
    control.exec("removejob two");
    let a = sim.analyze_log(&mut control, "shared");
    assert_eq!(
        a.pairing.connections.len(),
        2,
        "both computations' connections in one log: {:?}",
        a.pairing.connections
    );
    control.exec("die");
    sim.shutdown();
}

#[test]
fn many_jobs_and_filters_coexist() {
    // "No restriction is placed on the number of jobs or on the number
    // of filters the user can create." (§4.3)
    let sim = Simulation::builder()
        .machines(["console", "red", "green"])
        .seed(54)
        .build();
    let mut control = sim.controller("console").expect("controller");
    control.exec("filter fa console");
    control.exec("filter fb red");
    control.exec("filter fc green");
    assert_eq!(control.filters().len(), 3);
    for (i, f) in [("a", "fa"), ("b", "fb"), ("c", "fc")].iter().enumerate() {
        control.exec(&format!("newjob job{} {}", i, f.1));
    }
    let out = control.exec("jobs");
    assert!(out.contains("job0") && out.contains("job2"), "{out}");
    let out = control.exec("filter");
    assert!(out.contains("fa") && out.contains("fc"), "{out}");
    control.exec("die");
    sim.shutdown();
}
