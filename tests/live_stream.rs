//! End-to-end for the live streaming subsystem (E10): a metered
//! Lamport-mutex job runs while the controller `watch`es its
//! `log=store` filter. The watch must stream non-empty windows *while
//! the job is still running* (live, not post-hoc), and at quiescence
//! the incrementally-built live trace must equal — field for field —
//! the batch analyses over the same store segments. The bench compares
//! live ingest/window costs against batch re-analysis at every window.

use dpm::bench_report::BenchEntry;
use dpm::crates::analysis::{CommStats, HappensBefore, Pairing, Trace};
use dpm::crates::filter::SimFsBackend;
use dpm::crates::live::LiveTrace;
use dpm::crates::logstore::{OwnedFrame, StoreReader};
use dpm::{Controller, Descriptions, LogRecord, NetConfig, ProcState, Simulation};
use std::sync::Arc;

const HOSTS: [&str; 4] = ["yellow", "red", "green", "blue"];
/// Enough rounds that the job spans many real-time filter flushes —
/// simulated sleeps are virtual (instant), so only protocol volume
/// stretches the run.
const ROUNDS: usize = 12;

/// Whether every process of `job` reached a terminal state.
fn job_done(control: &Controller, job: &str) -> bool {
    match control.job(job) {
        None => true,
        Some(j) => j
            .procs
            .iter()
            .all(|p| matches!(p.state, ProcState::Killed | ProcState::Acquired)),
    }
}

#[test]
fn watch_streams_live_windows_and_equals_batch_at_quiescence() {
    let sim = Simulation::builder()
        .machines(HOSTS)
        .net(NetConfig::ideal())
        .seed(93)
        .build();
    let mut control = sim.controller("yellow").expect("controller");
    control.exec("filter f1 blue log=store");
    assert!(
        control.transcript().contains("created"),
        "{}",
        control.transcript()
    );

    control.exec("newjob mx f1");
    for (i, m) in HOSTS.iter().enumerate() {
        control.exec(&format!(
            "addprocess mx {m} /bin/lmutex {i} {} {ROUNDS} {}",
            HOSTS.len(),
            HOSTS.join(" ")
        ));
    }
    control.exec("setflags mx send receive");
    control.exec("startjob mx");

    // Stream windows while the job runs, polling continuously: the
    // workload's sleeps are virtual, so the wall-clock run is short. A
    // window only counts as "live" if the job was still non-terminal
    // after it closed.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(110);
    let mut live_windows = 0u32;
    let mut live_nonempty = 0u32;
    while !job_done(&control, "mx") {
        control.exec("watch f1 anomalies");
        if job_done(&control, "mx") {
            break;
        }
        live_windows += 1;
        let snap = control.last_window("f1").expect("watch closed a window");
        if snap.new_records > 0 {
            live_nonempty += 1;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "job never converged while watching"
        );
    }
    assert!(control.wait_job("mx", 120_000), "mutex job completed");
    assert!(
        live_nonempty >= 2,
        "watch must stream data during the run: {live_nonempty} non-empty of {live_windows} live windows"
    );
    let t = control.transcript();
    assert!(t.contains("watch f1 w0:"), "windows rendered: {t}");
    assert!(t.contains("anomaly:"), "anomaly lines rendered: {t}");

    // Drain the pipeline, then poll the watch until the live state has
    // consumed everything the store holds (shard flushes are async).
    let text = sim.stable_log(&mut control, "f1");
    assert!(!text.is_empty(), "store filter logged records");
    let blue = sim.cluster().machine("blue").expect("blue exists");
    let desc = Descriptions::standard();
    let drain = std::time::Instant::now() + std::time::Duration::from_secs(10);
    let reader = loop {
        control.exec("watch f1");
        let reader = StoreReader::load(&SimFsBackend::new(Arc::clone(&blue)), "/usr/tmp/log.f1");
        {
            let live = control.watch_live_mut("f1").expect("state").live_mut();
            if live.len() as u64 == reader.n_records() && live.reorder_pending() == 0 {
                break reader;
            }
        }
        assert!(
            std::time::Instant::now() < drain,
            "watch never caught up with the sealed store"
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    };
    let batch_trace = Trace::from_store(&reader, &desc);
    let batch_pairing = Pairing::analyze(&batch_trace);
    let batch_hb = HappensBefore::build(&batch_trace, &batch_pairing);
    let batch_stats = CommStats::analyze(&batch_trace, &batch_pairing);
    assert_eq!(batch_trace, Trace::parse(&text), "store and text agree");

    // The tentpole invariant: at quiescence, the incrementally-grown
    // live state equals the batch analyses, field for field.
    let live = control
        .watch_live_mut("f1")
        .expect("watch state exists")
        .live_mut();
    assert_eq!(live.reorder_pending(), 0, "no seq gaps at quiescence");
    assert_eq!(live.trace(), &batch_trace, "live trace == batch trace");
    assert_eq!(live.pairing(), &batch_pairing, "live pairing == batch");
    assert_eq!(live.hb(), &batch_hb, "live happens-before == batch");
    assert_eq!(live.stats(), &batch_stats, "live stats == batch");

    // ------------------------------------------------------------------
    // Bench: live ingest throughput, and per-window incremental
    // analysis vs re-running the batch pipeline at every window.
    // ------------------------------------------------------------------
    let frames: Vec<OwnedFrame> = reader.scan().map(|f| OwnedFrame::of(&f)).collect();
    assert_eq!(frames.len() as u64, reader.n_records());

    let t0 = std::time::Instant::now();
    let mut lt = LiveTrace::new(desc.clone());
    lt.ingest_batch(frames.iter().cloned());
    let ingest = t0.elapsed();
    assert_eq!(lt.len(), batch_trace.len());

    const BENCH_WINDOWS: usize = 10;
    let chunk = frames.len().div_ceil(BENCH_WINDOWS).max(1);
    let mut lt = LiveTrace::new(desc.clone());
    let (mut live_s, mut batch_s) = (0.0f64, 0.0f64);
    let mut windows = 0u32;
    let mut fed = 0;
    while fed < frames.len() {
        let n = chunk.min(frames.len() - fed);
        lt.ingest_batch(frames[fed..fed + n].iter().cloned());
        fed += n;
        windows += 1;
        // Live: the window's incremental cost is ingest + re-derive.
        let t = std::time::Instant::now();
        let _ = lt.pairing().messages.len();
        live_s += t.elapsed().as_secs_f64();
        // Batch equivalent: rebuild the trace from every frame so far
        // and re-run the pairing, as a poll-the-store design would.
        let t = std::time::Instant::now();
        let mut tr = Trace::default();
        for fr in &frames[..fed] {
            if let Some(rec) = LogRecord::from_raw(&desc, &fr.raw, &[]) {
                tr.push_record(&rec);
            }
        }
        let _ = Pairing::analyze(&tr).messages.len();
        batch_s += t.elapsed().as_secs_f64();
    }

    let secs = ingest.as_secs_f64().max(1e-9);
    let entry = BenchEntry::new("live_stream")
        .int("frames", frames.len() as u64)
        .int("trace_events", batch_trace.len() as u64)
        .int("live_windows", live_windows as u64)
        .num("ingest_frames_per_sec", frames.len() as f64 / secs)
        .num("window_live_ms", live_s * 1e3 / windows as f64)
        .num("window_batch_ms", batch_s * 1e3 / windows as f64)
        .num("window_speedup", batch_s / live_s.max(1e-9))
        .text("net", "ideal");
    let path = dpm::bench_report::record(&entry).expect("bench snapshot written");
    assert!(path.exists());

    control.exec("bye");
    sim.shutdown();
}

/// `tail` renders newly arrived records as text and shares the watch
/// cursors: a `tail` between `watch`es neither loses nor double-counts
/// frames for the live trace.
#[test]
fn tail_renders_new_records_and_shares_watch_cursors() {
    let sim = Simulation::builder()
        .machines(["yellow", "red"])
        .net(NetConfig::ideal())
        .seed(17)
        .build();
    let mut control = sim.controller("yellow").expect("controller");
    control.exec("filter f1 red log=store");
    assert!(control.transcript().contains("created"));

    control.exec("newjob pp f1");
    for (i, m) in ["yellow", "red"].iter().enumerate() {
        control.exec(&format!("addprocess pp {m} /bin/lmutex {i} 2 1 yellow red"));
    }
    control.exec("setflags pp send receive");
    control.exec("startjob pp");
    assert!(control.wait_job("pp", 60_000), "mutex pair completed");

    let text = sim.stable_log(&mut control, "f1");
    assert!(!text.is_empty());

    control.exec("tail f1 n=5");
    let t = control.transcript();
    assert!(t.contains("new record(s)"), "{t}");
    assert!(t.contains("event=send"), "tail rendered records: {t}");

    // Follow-up watch windows share the tail's cursors: polls converge
    // on exactly the store's record count, with no frame replayed or
    // double-counted (shard flushes are async, so poll until caught up).
    let red = sim.cluster().machine("red").expect("red exists");
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        control.exec("watch f1");
        let reader = StoreReader::load(&SimFsBackend::new(Arc::clone(&red)), "/usr/tmp/log.f1");
        let live = control.watch_live_mut("f1").expect("state").live_mut();
        if live.len() as u64 == reader.n_records() && live.reorder_pending() == 0 {
            assert_eq!(live.replays(), 0, "no frame offered twice past a cursor");
            assert_eq!(live.duplicates(), 0, "no (machine,pid,seq) double-count");
            break;
        }
        assert!(
            live.len() as u64 <= reader.n_records(),
            "live overshot the store: {} > {}",
            live.len(),
            reader.n_records()
        );
        assert!(
            std::time::Instant::now() < deadline,
            "tail/watch cursors never converged on the store contents"
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    }

    control.exec("bye");
    sim.shutdown();
}
