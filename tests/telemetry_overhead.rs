//! Instrumentation overhead on the E3 ingest path (`BENCH_telemetry`).
//!
//! The telemetry counters sit on the hottest loop the monitor has —
//! the sharded filter's per-record ingest — so their cost is measured,
//! not assumed: the same record stream is pushed through an
//! instrumented pipeline with telemetry enabled and again with the
//! runtime kill switch off (every record/add/set a no-op), and the
//! difference is the instrumentation bill. Target: < 5%.
//!
//! This test owns its binary: the kill switch is process-global, so it
//! must not share a test process with tests that assert on recorded
//! telemetry.

use dpm::bench_report::BenchEntry;
use dpm::crates::filter::{
    Descriptions, IngestClock, Rules, ShardLog, ShardedFilter, DEFAULT_BATCH_BYTES,
};
use dpm::crates::meter::{MeterBody, MeterHeader, MeterMsg, MeterSendMsg, SockName};
use dpm::crates::telemetry as tel;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Builds a wire stream of `n` well-formed send records.
fn wire(n: u32) -> Vec<u8> {
    let mut out = Vec::new();
    for k in 0..n {
        let msg = MeterMsg {
            header: MeterHeader {
                size: 0,
                machine: (k % 4) as u16,
                cpu_time: k,
                seq: k + 1,
                proc_time: 0,
                trace_type: dpm::crates::meter::trace_type::SEND,
            },
            body: MeterBody::Send(MeterSendMsg {
                pid: 100 + (k % 8),
                pc: 0,
                sock: 2,
                msg_length: k % 512,
                dest_name: Some(SockName::inet(1, 9)),
            }),
        };
        out.extend_from_slice(&msg.encode());
    }
    out
}

/// One full ingest of `stream` through a single-shard pipeline with
/// the staleness clock wired (the fully instrumented path), discarding
/// output. Returns the wall time from first feed to drained flush.
fn run_once(stream: &[u8]) -> Duration {
    let clock: IngestClock = Arc::new(|| 1_000_000);
    let filter = ShardedFilter::with_logs_clocked(
        1,
        Descriptions::standard(),
        Rules::default(),
        DEFAULT_BATCH_BYTES,
        Some(clock),
        |_| ShardLog::Text(Box::new(|_batch: &[u8]| {})),
    );
    let conn = filter.open_conn();
    let t0 = Instant::now();
    for chunk in stream.chunks(4096) {
        conn.feed(chunk.to_vec());
    }
    conn.close();
    filter.flush();
    let dt = t0.elapsed();
    drop(filter);
    dt
}

/// One measurement round: interleave enabled and disabled runs so
/// scheduling or frequency drift over the round hits both sides
/// equally; take the minimum of each side — the run least disturbed.
fn measure(runs: u32, stream: &[u8]) -> (f64, f64) {
    let mut enabled = Duration::MAX;
    let mut disabled = Duration::MAX;
    for _ in 0..runs {
        tel::set_enabled(true);
        enabled = enabled.min(run_once(stream));
        tel::set_enabled(false);
        disabled = disabled.min(run_once(stream));
    }
    tel::set_enabled(true);
    (enabled.as_secs_f64(), disabled.as_secs_f64().max(1e-9))
}

#[test]
fn instrumentation_overhead_is_under_five_percent() {
    const RECORDS: u32 = 120_000;
    let stream = wire(RECORDS);
    const RUNS: u32 = 7;
    const ROUNDS: u32 = 3;

    // Warm up allocators and the registry before timing anything.
    let _ = run_once(&stream);

    // Noise on shared hardware only ever inflates an overhead
    // estimate's spread, so the minimum over a few rounds is the
    // tightest honest estimate; stop early once a round is in budget.
    let (mut en, mut dis) = measure(RUNS, &stream);
    let mut overhead_pct = (en - dis) / dis * 100.0;
    for _ in 1..ROUNDS {
        if overhead_pct < 5.0 {
            break;
        }
        let (e, d) = measure(RUNS, &stream);
        let pct = (e - d) / d * 100.0;
        if pct < overhead_pct {
            (en, dis, overhead_pct) = (e, d, pct);
        }
    }
    let rate = f64::from(RECORDS) / en;

    let entry = BenchEntry::new("telemetry")
        .int("records", u64::from(RECORDS))
        .int("stream_bytes", stream.len() as u64)
        .num("ingest_records_per_sec", rate)
        .num("enabled_ms", en * 1e3)
        .num("disabled_ms", dis * 1e3)
        .num("overhead_pct", overhead_pct)
        .text(
            "path",
            "sharded-filter ingest (E3), 1 shard, staleness clock on",
        );
    let path = dpm::bench_report::record(&entry).expect("bench snapshot written");
    assert!(path.exists());

    assert!(
        overhead_pct < 5.0,
        "telemetry costs {overhead_pct:.2}% on the ingest path \
         (enabled {en:.4}s vs disabled {dis:.4}s over {RECORDS} records)"
    );
}
