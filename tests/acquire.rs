//! The `acquire` path end to end (§4.3): metering an already-running
//! process, the limits on controlling it, and releasing it on
//! `removejob` while it keeps executing.

use dpm::crates::analysis::EventKind;
use dpm::crates::workloads::client_server::SERVER_PORT;
use dpm::{ProcState, Simulation, Uid};

#[test]
fn acquired_server_is_metered_released_and_survives() {
    let sim = Simulation::builder()
        .machines(["yellow", "red", "green"])
        .seed(31)
        .build();
    // A server started outside the measurement system, like a system
    // daemon.
    let server_pid = sim
        .cluster()
        .spawn_user("red", "server", Uid(100), |p| {
            dpm::crates::workloads::client_server::server_main(p, vec![])
        })
        .expect("server starts");

    let mut control = sim.controller("yellow").expect("controller");
    control.exec("filter f1 yellow");
    control.exec("newjob watch");
    control.exec("setflags watch all");
    let out = control.exec(&format!("acquire watch red {server_pid}"));
    assert!(out.contains("acquired"), "{out}");
    assert_eq!(
        control.job("watch").unwrap().procs[0].state,
        ProcState::Acquired
    );

    // Acquired processes cannot be started or stopped.
    let out = control.exec("startjob watch");
    assert!(out.contains("cannot be started"), "{out}");
    let out = control.exec("stopjob watch");
    assert!(out.contains("cannot be stopped"), "{out}");

    // Load the server so it produces events while acquired.
    control.exec("newjob load");
    control.exec(&format!(
        "addprocess load green /bin/client red {SERVER_PORT} 4 32"
    ));
    control.exec("startjob load");
    assert!(control.wait_job("load", 60_000), "client finished");
    control.exec("removejob load");

    // Release the acquisition; the server keeps running unmetered.
    control.exec("removejob watch");
    let red = sim.cluster().machine("red").unwrap();
    assert!(
        !red.proc_state(server_pid).expect("exists").is_dead(),
        "acquired process continues to execute after removejob"
    );

    // The trace shows the server's side of the conversation —
    // including its fork-per-connection child, metered by
    // inheritance. The release-time flush travels to the filter
    // asynchronously, so poll getlog briefly.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
    let a = loop {
        let a = sim.analyze_log(&mut control, "f1");
        let has_fork = a
            .trace
            .events
            .iter()
            .any(|e| matches!(e.kind, EventKind::Fork { .. }));
        if has_fork || std::time::Instant::now() > deadline {
            break a;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    };
    assert!(!a.trace.is_empty(), "acquired server produced events");
    assert!(
        a.trace
            .events
            .iter()
            .any(|e| matches!(e.kind, EventKind::Fork { .. })),
        "server forked a metered handler"
    );
    assert!(
        a.trace
            .events
            .iter()
            .any(|e| matches!(e.kind, EventKind::Accept { .. })),
        "server accepted the client"
    );

    control.exec("die");
    control.exec("die");
    sim.shutdown();
}

#[test]
fn acquiring_a_nonexistent_process_fails_cleanly() {
    let sim = Simulation::builder()
        .machines(["yellow", "red"])
        .seed(32)
        .build();
    let mut control = sim.controller("yellow").expect("controller");
    control.exec("filter f1 red");
    control.exec("newjob watch");
    let out = control.exec("acquire watch red 99999");
    assert!(out.contains("acquire failed"), "{out}");
    let out = control.exec("acquire watch red notapid");
    assert!(out.contains("bad process identifier"), "{out}");
    control.exec("die");
    sim.shutdown();
}
