//! End-to-end for the self-telemetry subsystem: a metered job runs
//! through the full pipeline (meter → meterdaemon → store filter →
//! live watch) and the controller's `stats` command must show, *while
//! the job is still in flight*, populated per-stage counters and the
//! end-to-end staleness histograms that stitch the stages together.
//! A second test exercises the store's seal-latency leg with a
//! segment size small enough to roll.

use dpm::crates::logstore::{LogStore, MemBackend, StoreConfig};
use dpm::crates::meter::{MeterBody, MeterHeader, MeterMsg, MeterTermProc, TermReason};
use dpm::crates::telemetry as tel;
use dpm::{Controller, NetConfig, ProcState, Simulation};
use std::sync::Arc;

const HOSTS: [&str; 4] = ["yellow", "red", "green", "blue"];

/// Whether every process of `job` reached a terminal state.
fn job_done(control: &Controller, job: &str) -> bool {
    match control.job(job) {
        None => true,
        Some(j) => j
            .procs
            .iter()
            .all(|p| matches!(p.state, ProcState::Killed | ProcState::Acquired)),
    }
}

#[test]
fn stats_shows_per_stage_counters_and_staleness_mid_job() {
    let sim = Simulation::builder()
        .machines(HOSTS)
        .net(NetConfig::ideal())
        .seed(101)
        .build();
    let mut control = sim.controller("yellow").expect("controller");
    control.exec("filter f1 blue log=store");
    assert!(control.transcript().contains("created"));

    control.exec("newjob mx f1");
    for (i, m) in HOSTS.iter().enumerate() {
        control.exec(&format!(
            "addprocess mx {m} /bin/lmutex {i} {} 12 {}",
            HOSTS.len(),
            HOSTS.join(" ")
        ));
    }
    control.exec("setflags mx send receive");
    control.exec("startjob mx");

    // Watch (to drive the live legs of the staleness chain) and poll
    // `stats` while the job is in flight. The assertions are on the
    // *last* mid-job readout that saw records, so a fast run that
    // finishes between polls still passes as long as one poll caught
    // the pipeline mid-stream.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(110);
    let mut mid_job_stats = String::new();
    while !job_done(&control, "mx") {
        control.exec("watch f1");
        let out = control.exec("stats");
        if job_done(&control, "mx") {
            break;
        }
        if out.contains("e2e/emit_to_ingest_ms") {
            mid_job_stats = out;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "job never converged while polling stats"
        );
    }
    assert!(control.wait_job("mx", 120_000), "mutex job completed");

    // Mid-job: the staleness histogram and the per-stage counters were
    // already populated while processes were still running.
    assert!(
        mid_job_stats.contains("e2e/emit_to_ingest_ms"),
        "no mid-job stats readout captured the staleness histogram:\n{mid_job_stats}"
    );
    for needle in [
        "meterd/rpc_served",       // RPC stage saw traffic
        "meter/flush_bytes",       // kernel flush batching
        "filter/queue_depth",      // shard pipeline registered
        "store/flush_batch_bytes", // group commit ran
    ] {
        assert!(
            mid_job_stats.contains(needle),
            "mid-job stats missing {needle}:\n{mid_job_stats}"
        );
    }

    // Quiesce the pipeline, then check the registry end-state: every
    // leg of the staleness chain that this topology exercises must
    // hold samples. (Assertions go through the same global registry
    // the stats command renders.)
    let text = sim.stable_log(&mut control, "f1");
    assert!(!text.is_empty(), "store filter logged records");
    control.exec("watch f1"); // one more window after quiescence

    let r = tel::registry();
    // Leaf filters label the emit→ingest histogram per shard (s0...).
    let ingest = r.histogram("e2e", "emit_to_ingest_ms", "s0").snapshot();
    assert!(ingest.count > 0, "emit→ingest staleness recorded");
    let apply = r.histogram("e2e", "append_to_apply_us", "").snapshot();
    assert!(apply.count > 0, "append→apply staleness recorded");
    let window = r.histogram("e2e", "append_to_window_us", "").snapshot();
    assert!(window.count > 0, "append→window staleness recorded");
    assert!(
        window.quantile(0.99) <= window.max,
        "quantile readout is clamped by the observed max"
    );
    assert!(
        r.counter("meterd", "rpc_served", "blue").get() > 0,
        "the filter machine's meterdaemon served RPCs"
    );
    let flush = r.histogram("store", "flush_batch_bytes", "s0").snapshot();
    assert!(flush.count > 0 && flush.sum > 0, "group commits recorded");
    let close = r.histogram("live", "window_close_us", "").snapshot();
    assert!(close.count > 0, "window close latency recorded");

    // The `stats <component>` filter narrows the readout.
    let e2e_only = control.exec("stats e2e");
    assert!(e2e_only.contains("e2e/emit_to_ingest_ms"));
    assert!(!e2e_only.contains("meterd/"), "filtered out:\n{e2e_only}");
    let none = control.exec("stats nosuchcomponent");
    assert!(none.contains("no telemetry for component 'nosuchcomponent'"));

    control.exec("bye");
    sim.shutdown();
}

/// The store's seal leg of the staleness chain: with a segment size
/// small enough that appends roll segments, `store/seals` counts up
/// and `e2e/append_to_seal_us` accumulates one sample per seal.
#[test]
fn segment_seals_record_seal_age() {
    let record = |seq: u32| -> Vec<u8> {
        MeterMsg {
            header: MeterHeader {
                machine: 7,
                seq,
                cpu_time: 1,
                ..MeterHeader::default()
            },
            body: MeterBody::TermProc(MeterTermProc {
                pid: 40,
                pc: 0,
                reason: TermReason::Normal,
            }),
        }
        .encode()
    };
    let r = tel::registry();
    let seals_before = r.counter("store", "seals", "s3").get();
    let age_before = r.histogram("e2e", "append_to_seal_us", "s3").snapshot();

    let backend = Arc::new(MemBackend::new());
    let store = LogStore::open(
        backend,
        "seal-tm",
        StoreConfig {
            segment_bytes: 256, // a few frames per segment
            batch_bytes: 64,
            ..StoreConfig::default()
        },
    );
    let mut w = store.writer(3);
    for seq in 1..=64u32 {
        w.append(&record(seq));
    }
    w.sync();
    drop(w);

    let sealed = r.counter("store", "seals", "s3").get();
    assert!(
        sealed > seals_before,
        "small segments must seal: {sealed} seals"
    );
    let age = r.histogram("e2e", "append_to_seal_us", "s3").snapshot();
    assert!(
        age.count > age_before.count,
        "each seal records the age of the segment's first record"
    );
}
