//! End-to-end: Lamport's distributed mutual exclusion runs under full
//! metering (meterd → filter → binary store), and every property is
//! verified from the monitor's own log — the workload's internal
//! state is never inspected. Mutual exclusion comes out of
//! happens-before over the CS-enter/exit marker beacons, the total
//! request order out of the Lamport-timestamped request keys, and the
//! message complexity out of counting protocol beacons, all against a
//! trace rebuilt from store segments.

use dpm::bench_report::BenchEntry;
use dpm::crates::analysis::{MutexReport, Trace};
use dpm::crates::filter::SimFsBackend;
use dpm::crates::logstore::StoreReader;
use dpm::{Descriptions, LogRecord, NetConfig, Simulation};
use std::sync::Arc;

const HOSTS: [&str; 4] = ["yellow", "red", "green", "blue"];
const ROUNDS: usize = 2;

/// Loads the store under `dir` on `m` through the directory-listing
/// API — discovery by listing, not by probing dense segment names.
fn load_store(m: &Arc<dpm::crates::simos::Machine>, dir: &str) -> StoreReader {
    StoreReader::load(&SimFsBackend::new(Arc::clone(m)), dir)
}

/// Renders stored frames the way a text filter logs records.
fn render_store(reader: &StoreReader, desc: &Descriptions) -> String {
    let mut out = String::new();
    for f in reader.scan() {
        if let Some(rec) = LogRecord::from_raw(desc, f.raw, &[]) {
            out.push_str(&rec.to_string());
            out.push('\n');
        }
    }
    out
}

#[test]
fn mutual_exclusion_is_verified_from_the_store_log() {
    let sim = Simulation::builder()
        .machines(HOSTS)
        .net(NetConfig::ideal())
        .seed(61)
        .build();
    let mut control = sim.controller("yellow").expect("controller");
    control.exec("filter f1 blue log=store");
    assert!(
        control.transcript().contains("created"),
        "{}",
        control.transcript()
    );

    control.exec("newjob mx f1");
    for (i, m) in HOSTS.iter().enumerate() {
        control.exec(&format!(
            "addprocess mx {m} /bin/lmutex {i} {} {ROUNDS} {}",
            HOSTS.len(),
            HOSTS.join(" ")
        ));
    }
    control.exec("setflags mx send receive");
    control.exec("startjob mx");
    assert!(control.wait_job("mx", 120_000), "mutex job completed");

    // Drain the pipeline, then rebuild the trace from the raw store
    // segments — the only evidence the checker gets.
    let text = sim.stable_log(&mut control, "f1");
    assert!(!text.is_empty(), "store filter logged records");
    let blue = sim.cluster().machine("blue").expect("blue exists");
    let desc = Descriptions::standard();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    let reader = loop {
        let reader = load_store(&blue, "/usr/tmp/log.f1");
        if render_store(&reader, &desc) == text {
            break reader;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "segment render never matched the stabilized getlog text"
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    };
    let trace = Trace::from_store(&reader, &desc);
    assert_eq!(trace, Trace::parse(&text), "store and text traces agree");

    let t0 = std::time::Instant::now();
    let report = MutexReport::check(&trace);
    let analysis = t0.elapsed();

    // Safety, order, liveness and complexity — all from the trace.
    assert_eq!(report.n, HOSTS.len(), "{report}");
    assert!(report.mutual_exclusion_ok(), "{report}");
    assert!(!report.has_cycle, "{report}");
    assert!(report.order_ok, "{report}");
    assert_eq!(report.requests, HOSTS.len() * ROUNDS, "{report}");
    assert_eq!(report.intervals.len(), HOSTS.len() * ROUNDS, "{report}");
    for iv in &report.intervals {
        assert!(iv.exit_idx.is_some(), "interval {iv:?} closed");
    }
    // On an ideal network the protocol hits its 3(n-1) messages per
    // request exactly — nothing lost, nothing retried.
    assert_eq!(report.protocol_sends, report.bound, "{report}");
    assert!(report.faults.is_clean(), "{report}");

    // The controller exposes the same verdict as a session command.
    control.exec("check f1 mutex");
    let t = control.transcript();
    assert!(t.contains("mutual exclusion: OK"), "{t}");
    assert!(t.contains("total request order: OK"), "{t}");
    assert!(t.contains("within bound"), "{t}");
    assert!(t.contains("link faults: none"), "{t}");

    let secs = analysis.as_secs_f64().max(1e-9);
    let entry = BenchEntry::new("lamport_mutex")
        .int("trace_events", trace.len() as u64)
        .int("store_records", reader.n_records())
        .int("protocol_sends", report.protocol_sends as u64)
        .num("check_ms", analysis.as_secs_f64() * 1e3)
        .num("events_per_sec", trace.len() as f64 / secs)
        .text("net", "ideal");
    let path = dpm::bench_report::record(&entry).expect("bench snapshot written");
    assert!(path.exists());

    control.exec("bye");
    sim.shutdown();
}
