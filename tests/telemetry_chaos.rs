//! Telemetry under injected faults: a partition must surface as
//! nonzero retry/backoff counters labelled with the affected link in
//! the `stats` readout, and a failed chaos invariant must dump the
//! flight recorder with the fault's coordinates in the reason line.

use dpm::crates::chaos::{self, ChaosSpec, FaultPlan};
use dpm::crates::logstore::{LogStore, MemBackend, StoreConfig, StoreReader};
use dpm::crates::meter::{MeterBody, MeterHeader, MeterMsg, MeterTermProc, TermReason};
use dpm::crates::telemetry as tel;
use dpm::Simulation;
use std::sync::Arc;

/// A controller RPC into a partition: the retry layer burns its
/// schedule against the cut, and the telemetry must pin the failures
/// to the yellow→red link (RPC counters) or the unreachable host
/// (connect backoff), visibly in the `stats` command output.
#[test]
fn partition_shows_retry_counters_on_the_affected_link() {
    // Cut open from boot and far beyond the RPC retry budget.
    let spec = ChaosSpec::new().partition("yellow", "red", 0, 600_000_000);
    let plan = FaultPlan::new(7, spec, &["yellow", "red", "green"]);
    let injector = plan.injector();
    let sim = Simulation::builder()
        .machines(["yellow", "red", "green"])
        .seed(7)
        .fault_injector(injector.clone())
        .build();
    let mut control = sim.controller("yellow").expect("controller");
    control.exec("filter f1 green");
    control.exec("newjob j");

    let out = control.exec("addprocess j red /bin/A green");
    assert!(
        out.contains("cannot") || out.contains("failed"),
        "partitioned addprocess must fail visibly [{}]: {out}",
        plan.describe()
    );

    let r = tel::registry();
    let link_failures = r.counter("meterd", "rpc_unreachable", "yellow->red").get()
        + r.counter("meterd", "rpc_timeouts", "yellow->red").get()
        + r.counter("meterd", "rpc_retries", "yellow->red").get()
        + r.counter("net", "connect_retries", "red").get();
    assert!(
        link_failures > 0,
        "no retry/backoff counter incremented on the cut link [{}]",
        plan.describe()
    );

    // The same evidence must be readable in the session: some stats
    // line carries the affected link (or host) as its label.
    let stats = control.exec("stats");
    assert!(
        stats.contains("yellow->red") || stats.contains("  red:"),
        "stats readout does not name the affected link:\n{stats}"
    );

    // The exhausted retry also left a breadcrumb in the flight
    // recorder (the give-up note), so a later failure dump has the
    // partition's history in hand.
    assert!(
        !tel::flight().is_empty(),
        "no flight-recorder event from the failed RPC"
    );

    control.exec("die");
    sim.shutdown();
}

/// A corrupted store (fabricated duplicate) fails the no-duplicates
/// invariant, and the checker dumps the flight recorder with the
/// fault's coordinates — machine, pid, seq — in the reason line.
#[test]
fn failed_invariant_dumps_the_flight_recorder() {
    fn record(machine: u16, pid: u32, seq: u32) -> Vec<u8> {
        MeterMsg {
            header: MeterHeader {
                machine,
                seq,
                cpu_time: 3,
                ..MeterHeader::default()
            },
            body: MeterBody::TermProc(MeterTermProc {
                pid,
                pc: 0,
                reason: TermReason::Normal,
            }),
        }
        .encode()
    }

    let backend = Arc::new(MemBackend::new());
    let store = LogStore::open(backend.clone(), "dup", StoreConfig::default());
    let mut w = store.writer(0);
    // A duplicated (machine, pid, seq) triple the filter should have
    // absorbed — the invariant the chaos suite guards.
    w.append(&record(2, 55, 1));
    w.append(&record(2, 55, 2));
    w.append(&record(2, 55, 2));
    w.sync();
    drop(w);

    let reader = StoreReader::load(backend.as_ref(), "dup");
    let err = chaos::invariants::check_no_duplicates(&reader)
        .expect_err("duplicate store must fail the invariant");
    assert!(err.contains("machine 2 pid 55 seq 2"), "{err}");

    let dump = tel::last_dump().expect("invariant failure dumped the flight recorder");
    assert!(
        dump.contains("invariant no-duplicates failed"),
        "dump reason missing:\n{dump}"
    );
    assert!(
        dump.contains("machine 2 pid 55 seq 2"),
        "dump does not name the faulted coordinates:\n{dump}"
    );
    assert!(
        dump.contains("flight recorder"),
        "dump is not a flight-recorder rendering:\n{dump}"
    );
}
