//! Joint analysis across filters: two computations traced by two
//! different filters, merged into one trace for a whole-system view
//! (§3.4 allows any filter placement; §3.3 has one filter per
//! computation as the usual arrangement).

use dpm::crates::analysis::{merge_logs, Analysis, Trace};
use dpm::Simulation;

#[test]
fn two_filters_logs_merge_into_one_coherent_trace() {
    let sim = Simulation::builder()
        .machines(["console", "red", "green"])
        .seed(83)
        .build();
    let mut control = sim.controller("console").expect("controller");
    control.exec("filter fa console");
    control.exec("filter fb console");
    control.exec("newjob one fa");
    control.exec("newjob two fb");
    control.exec("addprocess one red /bin/A green 1820 3");
    control.exec("addprocess one green /bin/B 1820");
    control.exec("addprocess two red /bin/A green 1821 3");
    control.exec("addprocess two green /bin/B 1821");
    control.exec("setflags one send receive accept connect");
    control.exec("setflags two send receive accept connect");
    control.exec("startjob one");
    control.exec("startjob two");
    assert!(control.wait_job("one", 60_000));
    assert!(control.wait_job("two", 60_000));
    control.exec("removejob one");
    control.exec("removejob two");

    let log_a = sim.stable_log(&mut control, "fa");
    let log_b = sim.stable_log(&mut control, "fb");
    let t_a = Trace::parse(&log_a);
    let t_b = Trace::parse(&log_b);
    assert!(!t_a.is_empty() && !t_b.is_empty());

    let merged = merge_logs([log_a.as_str(), log_b.as_str()]);
    assert_eq!(merged.len(), t_a.len() + t_b.len());

    let joint = Analysis::of_trace(merged);
    // Both computations' connections pair in the joint trace, and each
    // job's conversation still matches in full.
    assert_eq!(
        joint.pairing.connections.len(),
        2,
        "{:?}",
        joint.pairing.connections
    );
    let solo = Analysis::of_log(&log_a);
    assert!(joint.stats.matched >= 2 * solo.stats.matched.min(1));
    // Four application processes in the joint structural view.
    assert_eq!(joint.structure.processes.len(), 4);
    // The joint order is *less* constrained than either half alone:
    // the two computations are concurrent.
    assert!(joint.hb.ordered_fraction() < 1.0);

    control.exec("die");
    sim.shutdown();
}
