//! End-to-end: synchronous Byzantine agreement (oral messages, one
//! traitor among four generals) runs under full metering, and the
//! checker recovers agreement, validity, the message-complexity
//! bounds *and the traitor's identity* from the monitor's own log —
//! the workload's internal state is never inspected. The traitor here
//! is a lieutenant; the checker catches it behaviorally, because its
//! round-2 relay beacons contradict the order the commander's round-1
//! beacons demonstrate.

use dpm::bench_report::BenchEntry;
use dpm::crates::analysis::{ByzReport, Trace};
use dpm::crates::filter::SimFsBackend;
use dpm::crates::logstore::StoreReader;
use dpm::{Descriptions, LogRecord, NetConfig, Simulation};
use std::sync::Arc;

const HOSTS: [&str; 4] = ["yellow", "red", "green", "blue"];
const ORDER: u32 = 1;
const TRAITOR: usize = 2;

/// Loads the store under `dir` on `m` through the directory-listing
/// API — discovery by listing, not by probing dense segment names.
fn load_store(m: &Arc<dpm::crates::simos::Machine>, dir: &str) -> StoreReader {
    StoreReader::load(&SimFsBackend::new(Arc::clone(m)), dir)
}

fn render_store(reader: &StoreReader, desc: &Descriptions) -> String {
    let mut out = String::new();
    for f in reader.scan() {
        if let Some(rec) = LogRecord::from_raw(desc, f.raw, &[]) {
            out.push_str(&rec.to_string());
            out.push('\n');
        }
    }
    out
}

#[test]
fn byzantine_agreement_and_the_traitor_are_verified_from_the_store_log() {
    let sim = Simulation::builder()
        .machines(HOSTS)
        .net(NetConfig::ideal())
        .seed(67)
        .build();
    let mut control = sim.controller("yellow").expect("controller");
    control.exec("filter f1 red log=store");
    assert!(
        control.transcript().contains("created"),
        "{}",
        control.transcript()
    );

    control.exec("newjob byz f1");
    for (i, m) in HOSTS.iter().enumerate() {
        control.exec(&format!(
            "addprocess byz {m} /bin/byz {i} {} {ORDER} {TRAITOR} {}",
            HOSTS.len(),
            HOSTS.join(" ")
        ));
    }
    control.exec("setflags byz send receive");
    control.exec("startjob byz");
    assert!(control.wait_job("byz", 120_000), "byzantine job completed");

    let text = sim.stable_log(&mut control, "f1");
    assert!(!text.is_empty(), "store filter logged records");
    let red = sim.cluster().machine("red").expect("red exists");
    let desc = Descriptions::standard();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    let reader = loop {
        let reader = load_store(&red, "/usr/tmp/log.f1");
        if render_store(&reader, &desc) == text {
            break reader;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "segment render never matched the stabilized getlog text"
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    };
    let trace = Trace::from_store(&reader, &desc);
    assert_eq!(trace, Trace::parse(&text), "store and text traces agree");

    let t0 = std::time::Instant::now();
    let report = ByzReport::check(&trace);
    let analysis = t0.elapsed();

    // Interactive consistency among the generals the trace exonerates,
    // the exact oral-messages complexity, and the traitor by name.
    assert_eq!(report.n, HOSTS.len(), "{report}");
    assert_eq!(report.suspected, vec![TRAITOR as u32], "{report}");
    assert!(report.agreement_ok(), "{report}");
    assert!(report.validity_ok(), "{report}");
    assert_eq!(report.r1_sends, HOSTS.len() - 1, "{report}");
    assert_eq!(
        report.r2_sends,
        (HOSTS.len() - 1) * (HOSTS.len() - 2),
        "{report}"
    );
    assert!(report.within_bound(), "{report}");
    assert!(report.faults.is_clean(), "{report}");
    // Every loyal lieutenant decided the loyal commander's order.
    for (&id, &d) in &report.decisions {
        if id != TRAITOR as u32 {
            assert_eq!(d, ORDER, "lieutenant {id} decided the order: {report}");
        }
    }

    control.exec("check f1 byzantine");
    let t = control.transcript();
    assert!(t.contains("agreement: OK   validity: OK"), "{t}");
    assert!(
        t.contains(&format!(
            "traitors detected from trace: lieutenant {TRAITOR}"
        )),
        "{t}"
    );
    assert!(t.contains("within bound"), "{t}");
    assert!(t.contains("link faults: none"), "{t}");

    let secs = analysis.as_secs_f64().max(1e-9);
    let entry = BenchEntry::new("byzantine")
        .int("trace_events", trace.len() as u64)
        .int("store_records", reader.n_records())
        .int("r1_sends", report.r1_sends as u64)
        .int("r2_sends", report.r2_sends as u64)
        .num("check_ms", analysis.as_secs_f64() * 1e3)
        .num("events_per_sec", trace.len() as f64 / secs)
        .text("net", "ideal");
    let path = dpm::bench_report::record(&entry).expect("bench snapshot written");
    assert!(path.exists());

    control.exec("bye");
    sim.shutdown();
}
