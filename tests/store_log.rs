//! End-to-end checks of the binary log store against the text log.
//!
//! Part 1 feeds two standard filter processes — one `text`, one
//! `store` — byte-identical meter streams inside the simulated OS and
//! asserts the store path reproduces the text path exactly: rendering
//! the stored raw records gives the same log bytes, and
//! `Trace::from_store` gives the same typed events as parsing the
//! text log.
//!
//! Part 2 drives the whole control plane: a session with
//! `filter f1 blue log=store`, a metered job, `getlog` (which fetches
//! segments and renders locally), and the analysis built straight from
//! the store.

use dpm::crates::analysis::{Analysis, Trace};
use dpm::crates::filter::{filter_main, FilterEngine};
use dpm::crates::logstore::StoreReader;
use dpm::crates::meter::{
    MeterBody, MeterFork, MeterHeader, MeterMsg, MeterSendMsg, MeterTermProc, SockName, TermReason,
};
use dpm::{
    Cluster, Descriptions, LogRecord, NetConfig, Proc, Simulation, SysError, SysResult, Uid,
};

const TEXT_PORT: u16 = 4600;
const STORE_PORT: u16 = 4601;
const TEXT_LOG: &str = "/usr/tmp/log.text";
const STORE_LOG: &str = "/usr/tmp/log.store";

fn msg(machine: u16, cpu: u32, body: MeterBody) -> Vec<u8> {
    MeterMsg {
        header: MeterHeader {
            size: 0,
            machine,
            cpu_time: cpu,
            seq: 0,
            proc_time: 0,
            trace_type: body.trace_type(),
        },
        body,
    }
    .encode()
}

/// One metered process's stream: sends, a fork, and a termination,
/// with zero-filled garbage runs to exercise resynchronization. The
/// same bytes go to both filters.
fn stream_for(conn: u32) -> Vec<u8> {
    let mut wire = Vec::new();
    for i in 0..20u32 {
        if i % 4 == conn % 4 {
            wire.extend(std::iter::repeat_n(0u8, 3 + (i as usize % 5)));
        }
        wire.extend_from_slice(&msg(
            conn as u16,
            100 * conn + i,
            MeterBody::Send(MeterSendMsg {
                pid: 1000 + conn,
                pc: 7,
                sock: 3,
                msg_length: 64 + i,
                dest_name: Some(SockName::inet(2, 99)),
            }),
        ));
    }
    wire.extend_from_slice(&msg(
        conn as u16,
        9_000,
        MeterBody::Fork(MeterFork {
            pid: 1000 + conn,
            pc: 8,
            new_pid: 2000 + conn,
        }),
    ));
    wire.extend_from_slice(&msg(
        conn as u16,
        9_500,
        MeterBody::TermProc(MeterTermProc {
            pid: 1000 + conn,
            pc: 9,
            reason: TermReason::Normal,
        }),
    ));
    wire
}

fn connect_with_retry(p: &Proc, host: &str, port: u16) -> SysResult<dpm::crates::simos::Fd> {
    let mut tries = 0;
    loop {
        let s = p.socket(
            dpm::crates::simos::Domain::Inet,
            dpm::crates::simos::SockType::Stream,
        )?;
        match p.connect_host(s, host, port) {
            Ok(()) => return Ok(s),
            Err(SysError::Econnrefused) if tries < 500 => {
                let _ = p.close(s);
                tries += 1;
                p.sleep_ms(2)?;
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            Err(e) => {
                let _ = p.close(s);
                return Err(e);
            }
        }
    }
}

/// Loads the store under `dir` on `m` through the directory-listing
/// API — discovery by listing, not by probing dense segment names
/// (and so shard-count agnostic).
fn load_store(m: &std::sync::Arc<dpm::crates::simos::Machine>, dir: &str) -> StoreReader {
    StoreReader::load(
        &dpm::crates::filter::SimFsBackend::new(std::sync::Arc::clone(m)),
        dir,
    )
}

/// Renders stored frames exactly the way a text filter logs records:
/// decode the raw wire bytes with the descriptions, one line each.
fn render_store(reader: &StoreReader, desc: &Descriptions) -> String {
    let mut out = String::new();
    for f in reader.scan() {
        if let Some(rec) = LogRecord::from_raw(desc, f.raw, &[]) {
            out.push_str(&rec.to_string());
            out.push('\n');
        }
    }
    out
}

#[test]
fn store_filter_matches_text_filter_on_identical_streams() {
    let c = Cluster::builder()
        .net(NetConfig::ideal())
        .seed(31)
        .machine("mill")
        .build();

    // Two standard filter processes, identical except for the sink.
    for (port, log, mode) in [
        (TEXT_PORT, TEXT_LOG, "text"),
        (STORE_PORT, STORE_LOG, "store"),
    ] {
        c.spawn_user("mill", &format!("filter-{mode}"), Uid::ROOT, move |p| {
            filter_main(
                p,
                vec![
                    port.to_string(),
                    log.to_owned(),
                    "descriptions".to_owned(),
                    "templates".to_owned(),
                    "1".to_owned(),
                    mode.to_owned(),
                ],
            )
        })
        .expect("spawn filter");
    }

    // Each source sends the same bytes to both filters; sources run
    // sequentially so both logs see one deterministic total order.
    let mill = c.machine("mill").expect("mill exists");
    for conn in 0..3u32 {
        let pid = c
            .spawn_user("mill", &format!("src{conn}"), Uid(7), move |p| {
                let wire = stream_for(conn);
                for port in [TEXT_PORT, STORE_PORT] {
                    let s = connect_with_retry(&p, "mill", port)?;
                    for chunk in wire.chunks(13) {
                        p.write(s, chunk)?;
                    }
                    p.close(s)?;
                }
                Ok(())
            })
            .expect("spawn source");
        mill.wait_exit(pid);
    }

    // The reference: what a lone engine keeps from those streams.
    let mut expected_lines = 0usize;
    for conn in 0..3u32 {
        let mut engine = FilterEngine::standard();
        engine.feed_into(&stream_for(conn), &mut |_rec| expected_lines += 1);
    }
    assert!(expected_lines > 0, "reference kept something");

    // Wait for both sinks to drain (filters flush on idle).
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    let (text_log, reader) = loop {
        let text = mill.fs().read_string(TEXT_LOG).unwrap_or_default();
        let reader = load_store(&mill, STORE_LOG);
        if text.lines().count() == expected_lines && reader.n_records() == expected_lines as u64 {
            break (text, reader);
        }
        assert!(
            std::time::Instant::now() < deadline,
            "sinks never drained: text {} / store {} of {expected_lines}",
            text.lines().count(),
            reader.n_records(),
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
    };

    // Byte identity: rendering the stored raw records reproduces the
    // text log exactly.
    let desc = Descriptions::standard();
    assert_eq!(render_store(&reader, &desc), text_log);

    // And the analysis layer agrees: events from the store equal
    // events parsed from the text log.
    let from_store = Trace::from_frames(reader.scan(), &desc);
    let from_text = Trace::parse(&text_log);
    assert_eq!(from_store.len(), expected_lines);
    assert_eq!(from_store, from_text);

    // Every stored frame carries the process key lifted from the wire
    // (machine = conn, pid = 1000 + conn in the synthetic streams).
    for f in reader.scan() {
        assert_eq!(f.proc.pid, 1000 + u32::from(f.proc.machine));
    }

    c.shutdown();
}

#[test]
fn multi_segment_store_reassembles_identically_by_every_path() {
    use dpm::crates::logstore::{LogStore, MemBackend, StoreConfig};
    use std::sync::Arc;

    // Tiny segments force many rotations; the trace must come out
    // identical whether it is rebuilt from the reader, from the raw
    // frame iterator, or from the rendered text — segment boundaries
    // may not show through at any layer.
    let backend = Arc::new(MemBackend::new());
    let store = LogStore::open(
        backend.clone(),
        "multi",
        StoreConfig {
            segment_bytes: 512,
            batch_bytes: 64,
            index_every: 8,
        },
    );
    let mut w = store.writer(0);
    let mut appended = 0usize;
    for conn in 1..=3u16 {
        for i in 0..40u32 {
            w.append(&msg(
                conn,
                1_000 * u32::from(conn) + i,
                MeterBody::Send(MeterSendMsg {
                    pid: 500 + u32::from(conn),
                    pc: 7,
                    sock: 3,
                    msg_length: 32 + i,
                    dest_name: Some(SockName::inet(2, 99)),
                }),
            ));
            appended += 1;
        }
        w.append(&msg(
            conn,
            90_000,
            MeterBody::TermProc(MeterTermProc {
                pid: 500 + u32::from(conn),
                pc: 9,
                reason: TermReason::Normal,
            }),
        ));
        appended += 1;
    }
    w.sync();

    let reader = StoreReader::load(backend.as_ref(), "multi");
    assert!(
        reader.n_segments() > 3,
        "only {} segments — rotation never happened",
        reader.n_segments()
    );
    assert_eq!(reader.n_records(), appended as u64);

    let desc = Descriptions::standard();
    let from_store = Trace::from_store(&reader, &desc);
    let from_frames = Trace::from_frames(reader.scan(), &desc);
    let from_text = Trace::parse(&render_store(&reader, &desc));
    assert_eq!(from_store.len(), appended);
    assert_eq!(from_store, from_frames);
    assert_eq!(from_store, from_text);
}

#[test]
fn controller_session_with_store_filter() {
    let sim = Simulation::builder()
        .machines(["yellow", "red", "green", "blue"])
        .seed(42)
        .build();
    let mut control = sim.controller("yellow").expect("controller");
    control.exec("filter f1 blue log=store");
    assert!(
        control.transcript().contains("filter 'f1' ... created"),
        "{}",
        control.transcript()
    );
    control.exec("filter");
    assert!(
        control.transcript().contains("log=store"),
        "listing marks the store sink: {}",
        control.transcript()
    );

    control.exec("newjob foo");
    control.exec("addprocess foo red /bin/A green");
    control.exec("addprocess foo green /bin/B");
    control.exec("setflags foo send receive fork accept connect");
    control.exec("startjob foo");
    assert!(control.wait_job("foo", 60_000), "job foo completed");
    control.exec("removejob foo");

    // `getlog` on a store filter fetches the segments and renders the
    // same text a text filter would have logged.
    let text = sim.stable_log(&mut control, "f1");
    assert!(!text.is_empty(), "getlog produced a trace");

    // Reading the segments straight off blue and rendering locally
    // must agree with what getlog produced (poll: flushes are async).
    let blue = sim.cluster().machine("blue").expect("blue exists");
    let desc = Descriptions::standard();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    let reader = loop {
        let reader = load_store(&blue, "/usr/tmp/log.f1");
        if render_store(&reader, &desc) == text {
            break reader;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "direct segment render never matched getlog output"
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    };

    // The analysis built from the store equals the analysis of the
    // rendered text, and has the Appendix-B structure.
    let from_store = Trace::from_store(&reader, &desc);
    assert_eq!(from_store, Trace::parse(&text));
    let analysis = Analysis::of_log(&text);
    assert!(!analysis.trace.is_empty(), "trace has events");
    assert_eq!(analysis.pairing.connections.len(), 1, "one A→B connection");
    assert!(
        analysis.stats.matched >= 10,
        "request/reply traffic matched"
    );

    control.exec("bye");
    assert!(control.is_done());
    sim.shutdown();
}
