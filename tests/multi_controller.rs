//! Two independent measurement sessions sharing one cluster: separate
//! controllers, separate filters, one meterdaemon per machine serving
//! both — the multi-user situation §3.5.5's protection section
//! assumes. Plus the dependent-controllers case: an owner and a
//! standby sharing one control log, where killing the owner mid-job
//! hands the session to the standby.

use std::sync::Arc;

use dpm::crates::chaos::{crash_controller, invariants};
use dpm::crates::controlplane::JobTable;
use dpm::crates::logstore::{Backend, MemBackend, StoreReader};
use dpm::{ProcState, Simulation, Uid};

#[test]
fn two_controllers_measure_independently() {
    let sim = Simulation::builder()
        .machines(["term1", "term2", "red", "green"])
        .seed(61)
        .build();

    let mut alice = sim.controller_as("term1", Uid(100)).expect("alice");
    let mut bob = sim.controller_as("term2", Uid(200)).expect("bob");

    alice.exec("filter fa red");
    bob.exec("filter fb green");

    alice.exec("newjob a-job");
    bob.exec("newjob b-job");

    // Both run the A/B pair, on distinct ports.
    alice.exec("addprocess a-job red /bin/A green 1810 3");
    alice.exec("addprocess a-job green /bin/B 1810");
    bob.exec("addprocess b-job red /bin/A green 1811 3");
    bob.exec("addprocess b-job green /bin/B 1811");

    alice.exec("setflags a-job send receive");
    bob.exec("setflags b-job accept connect");

    alice.exec("startjob a-job");
    bob.exec("startjob b-job");

    assert!(alice.wait_job("a-job", 60_000), "alice's job finished");
    assert!(bob.wait_job("b-job", 60_000), "bob's job finished");

    alice.exec("removejob a-job");
    bob.exec("removejob b-job");

    // Each filter saw only its own job's events, with its own flags.
    let a = sim.analyze_log(&mut alice, "fa");
    let b = sim.analyze_log(&mut bob, "fb");
    assert!(!a.trace.is_empty() && !b.trace.is_empty());
    for e in &a.trace.events {
        assert!(
            matches!(e.kind.name(), "send" | "receive"),
            "alice flagged only send/receive, saw {}",
            e.kind.name()
        );
    }
    for e in &b.trace.events {
        assert!(
            matches!(e.kind.name(), "accept" | "connect"),
            "bob flagged only accept/connect, saw {}",
            e.kind.name()
        );
    }
    // No cross-talk: alice's processes are not in bob's trace. The A
    // processes differ by pid even though both ran on red.
    let a_pids: Vec<u32> = a.trace.processes().iter().map(|p| p.pid).collect();
    let b_pids: Vec<u32> = b.trace.processes().iter().map(|p| p.pid).collect();
    for p in &a_pids {
        assert!(!b_pids.contains(p), "pid {p} leaked between sessions");
    }

    // Each controller's transcript mentions only its own job.
    assert!(alice.transcript().contains("a-job"));
    assert!(!alice.transcript().contains("b-job"));
    assert!(bob.transcript().contains("b-job"));
    assert!(!bob.transcript().contains("a-job"));

    alice.exec("die");
    bob.exec("die");
    sim.shutdown();
}

/// Controller A is killed mid-job; standby B replays the shared
/// control log, waits out A's lease, and finishes the session — same
/// job id, no record lost, and the replayed table agrees with B's
/// in-memory view.
#[test]
fn standby_takes_over_a_killed_controllers_job() {
    let backend = Arc::new(MemBackend::new());
    let sim = Simulation::builder()
        .machines(["term1", "term2", "red", "green"])
        .seed(67)
        .build();

    let mut a = sim.controller_as("term1", Uid(100)).expect("controller A");
    a.enable_control_log(backend.clone() as Arc<dyn Backend>, "control");
    a.exec("filter f1 red");
    a.exec("newjob pair");
    a.exec("addprocess pair red /bin/A green 1812 3");
    a.exec("addprocess pair green /bin/B 1812");
    a.exec("setflags pair send receive");
    a.exec("startjob pair");
    let owner = a.owner_id();

    // The owner dies mid-job: uncatchable, no goodbye record.
    assert!(!crash_controller(sim.cluster(), "term1").is_empty());

    let mut b = sim.controller_as("term2", Uid(100)).expect("controller B");
    let adopted = b.adopt_from(backend.clone() as Arc<dyn Backend>, "control");
    assert_eq!(adopted, vec!["pair".to_owned()]);
    assert_ne!(b.owner_id(), owner, "a different controller owns it now");

    // B's transcript proves the takeover: the *same* job id, adopted,
    // then driven to completion exactly as A would have.
    assert!(
        b.transcript()
            .contains("job 'pair' adopted (owner now term2:"),
        "transcript: {}",
        b.transcript()
    );
    assert!(b.wait_job("pair", 60_000), "B finished A's job");
    for p in &b.job("pair").expect("adopted job").procs {
        assert_eq!(
            p.state,
            ProcState::Killed,
            "{} reached terminal state",
            p.name
        );
    }

    // The replayed table is B's in-memory view: same job, same filter
    // binding, same processes, every one terminal in the log too.
    let reader = StoreReader::load(backend.as_ref(), "control");
    let table = JobTable::from_store(&reader);
    let jr = &table.jobs["pair"];
    assert_eq!(jr.filter, "f1");
    assert_eq!(jr.procs.len(), 2);
    assert!(jr.procs.iter().all(|p| p.state == "killed"));
    assert_eq!(
        jr.lease.as_ref().expect("leased").owner,
        b.owner_id(),
        "the log records B as the owner"
    );
    invariants::check_control_plane(&reader).expect("failover invariants hold");

    // The trace renders through B even though A created the filter:
    // the descriptions were rebuilt from the control log.
    let analysis = sim.analyze_log(&mut b, "f1");
    assert!(!analysis.trace.is_empty(), "adopted session still traces");

    b.exec("removejob pair");
    b.exec("die");
    sim.shutdown();
}
