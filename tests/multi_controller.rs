//! Two independent measurement sessions sharing one cluster: separate
//! controllers, separate filters, one meterdaemon per machine serving
//! both — the multi-user situation §3.5.5's protection section
//! assumes.

use dpm::{Simulation, Uid};

#[test]
fn two_controllers_measure_independently() {
    let sim = Simulation::builder()
        .machines(["term1", "term2", "red", "green"])
        .seed(61)
        .build();

    let mut alice = sim.controller_as("term1", Uid(100)).expect("alice");
    let mut bob = sim.controller_as("term2", Uid(200)).expect("bob");

    alice.exec("filter fa red");
    bob.exec("filter fb green");

    alice.exec("newjob a-job");
    bob.exec("newjob b-job");

    // Both run the A/B pair, on distinct ports.
    alice.exec("addprocess a-job red /bin/A green 1810 3");
    alice.exec("addprocess a-job green /bin/B 1810");
    bob.exec("addprocess b-job red /bin/A green 1811 3");
    bob.exec("addprocess b-job green /bin/B 1811");

    alice.exec("setflags a-job send receive");
    bob.exec("setflags b-job accept connect");

    alice.exec("startjob a-job");
    bob.exec("startjob b-job");

    assert!(alice.wait_job("a-job", 60_000), "alice's job finished");
    assert!(bob.wait_job("b-job", 60_000), "bob's job finished");

    alice.exec("removejob a-job");
    bob.exec("removejob b-job");

    // Each filter saw only its own job's events, with its own flags.
    let a = sim.analyze_log(&mut alice, "fa");
    let b = sim.analyze_log(&mut bob, "fb");
    assert!(!a.trace.is_empty() && !b.trace.is_empty());
    for e in &a.trace.events {
        assert!(
            matches!(e.kind.name(), "send" | "receive"),
            "alice flagged only send/receive, saw {}",
            e.kind.name()
        );
    }
    for e in &b.trace.events {
        assert!(
            matches!(e.kind.name(), "accept" | "connect"),
            "bob flagged only accept/connect, saw {}",
            e.kind.name()
        );
    }
    // No cross-talk: alice's processes are not in bob's trace. The A
    // processes differ by pid even though both ran on red.
    let a_pids: Vec<u32> = a.trace.processes().iter().map(|p| p.pid).collect();
    let b_pids: Vec<u32> = b.trace.processes().iter().map(|p| p.pid).collect();
    for p in &a_pids {
        assert!(!b_pids.contains(p), "pid {p} leaked between sessions");
    }

    // Each controller's transcript mentions only its own job.
    assert!(alice.transcript().contains("a-job"));
    assert!(!alice.transcript().contains("b-job"));
    assert!(bob.transcript().contains("b-job"));
    assert!(!bob.transcript().contains("a-job"));

    alice.exec("die");
    bob.exec("die");
    sim.shutdown();
}
