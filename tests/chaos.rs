//! Chaos suite: the monitor under scripted faults, across a seed
//! matrix.
//!
//! Every scenario builds a [`FaultPlan`] — pure data: `(seed, spec)`
//! fully determine the injected-fault schedule — and asserts the
//! monitor's safety properties hold anyway: workloads complete, the
//! controller's job table converges, and the log store neither loses
//! nor duplicates accepted records. Failure messages always include
//! `plan.describe()`, the one line needed to replay the failing
//! schedule.
//!
//! The seed matrix comes from `DPM_CHAOS_SEEDS` (comma-separated) when
//! set — CI pins its eight seeds explicitly — and defaults to a
//! four-seed subset that keeps the debug-mode test run quick.

use dpm::crates::analysis::{ByzReport, MutexReport, Trace};
use dpm::crates::chaos::{self, ChaosSpec, FaultPlan};
use dpm::crates::filter::SimFsBackend;
use dpm::crates::logstore::StoreReader;
use dpm::crates::workloads::ring::ring_main;
use dpm::{Cluster, Controller, NetConfig, ProcState, Simulation, Uid};

/// The seed matrix: `DPM_CHAOS_SEEDS="1,2,3"` overrides; CI passes
/// all eight fixed seeds, the local default is a fast subset.
fn seeds() -> Vec<u64> {
    match std::env::var("DPM_CHAOS_SEEDS") {
        Ok(s) => {
            let parsed: Vec<u64> = s.split(',').filter_map(|t| t.trim().parse().ok()).collect();
            assert!(
                !parsed.is_empty(),
                "DPM_CHAOS_SEEDS set but unparsable: {s}"
            );
            parsed
        }
        Err(_) => vec![11, 42, 97, 512],
    }
}

/// The datagram token ring survives drop/duplicate/delay chaos: its
/// retransmit-until-ack protocol plus hop-count dedup absorb every
/// fault class the injector scripts.
#[test]
fn ring_workload_survives_datagram_chaos() {
    let mut faults_fired = 0;
    for seed in seeds() {
        let spec = ChaosSpec::new()
            .drop(0.15)
            .duplicate(0.10)
            .delay(0.10, 2_000);
        let plan = FaultPlan::new(seed, spec, &["a", "b", "c"]);
        let injector = plan.injector();
        let c = Cluster::builder()
            .net(NetConfig::lan())
            .seed(seed)
            .fault_injector(injector.clone())
            .machine("a")
            .machine("b")
            .machine("c")
            .build();
        let hosts = ["a", "b", "c"];
        let mut pids = Vec::new();
        for i in 0..3u16 {
            let next = hosts[(i as usize + 1) % 3];
            let args: Vec<String> = vec![
                i.to_string(),
                "3".into(),
                next.into(),
                "2".into(),
                if i == 0 { "start".into() } else { "no".into() },
            ];
            let pid = c
                .spawn_user(hosts[i as usize], "ring", Uid(1), move |p| {
                    ring_main(p, args)
                })
                .unwrap_or_else(|e| panic!("spawn ring node {i}: {e:?} [{}]", plan.describe()));
            pids.push((hosts[i as usize], pid));
        }
        for (h, pid) in pids {
            let m = c.machine(h).expect("machine");
            assert_eq!(
                m.wait_exit(pid),
                Some(dpm::TermReason::Normal),
                "ring node on {h} failed [{}]",
                plan.describe()
            );
            let out = String::from_utf8_lossy(&m.console_output(pid).unwrap()).into_owned();
            assert!(
                out.contains("saw 2 tokens"),
                "node on {h} said {out:?} [{}]",
                plan.describe()
            );
        }
        c.shutdown();
        let t = injector.tally();
        faults_fired += t.drops() + t.dups() + t.delays();
    }
    // One seed's short run can legitimately dodge a 15% rate; the
    // matrix as a whole must have exercised the injector.
    assert!(
        faults_fired > 0,
        "no datagram fault fired across the whole seed matrix"
    );
}

/// One client/server run under meter-flush duplication: the job
/// completes and the store holds no duplicated record (the filter's
/// sequence dedup absorbed the at-least-once delivery).
///
/// Returns the duplicate-flush count so the caller can assert the
/// matrix as a whole exercised the fault.
fn run_client_server_meter_dup(seed: u64) -> u64 {
    let spec = ChaosSpec::new().meter_dup(0.35);
    let plan = FaultPlan::new(seed, spec, &["yellow", "red", "green", "blue"]);
    let injector = plan.injector();
    let sim = Simulation::builder()
        .machines(["yellow", "red", "green", "blue"])
        .seed(seed)
        .fault_injector(injector.clone())
        .build();
    let mut control = sim.controller("yellow").expect("controller");
    control.exec("filter f1 blue log=store");
    control.exec("newjob foo");
    control.exec("addprocess foo red /bin/A green");
    control.exec("addprocess foo green /bin/B");
    control.exec("setflags foo send receive fork accept connect");
    control.exec("startjob foo");
    assert!(
        control.wait_job("foo", 120_000),
        "job never converged [{}]",
        plan.describe()
    );
    control.exec("removejob foo");

    // Drain: getlog until stable, then read the segments off blue.
    let text = sim.stable_log(&mut control, "f1");
    assert!(!text.is_empty(), "empty trace [{}]", plan.describe());
    let blue = sim.cluster().machine("blue").expect("blue");
    let backend = SimFsBackend::new(blue);
    let reader = StoreReader::load(&backend, "/usr/tmp/log.f1");
    assert!(reader.n_records() > 0, "empty store [{}]", plan.describe());
    // The invariant meter duplication threatens: no record stored
    // twice. (Gaplessness is not asserted here — the filter is free to
    // reject records its rules don't select.)
    if let Err(why) = chaos::invariants::check_no_duplicates(&reader) {
        panic!("{why} [{}]", plan.describe());
    }
    control.exec("die");
    sim.shutdown();
    injector.tally().meter_dups()
}

#[test]
fn meter_flush_duplication_never_duplicates_stored_records() {
    let mut fired = 0;
    for seed in seeds() {
        fired += run_client_server_meter_dup(seed);
    }
    assert!(
        fired > 0,
        "no duplicate flush fired across the whole seed matrix"
    );
}

/// Same `(seed, spec)`, same outcome: the determinism contract at the
/// test level. (Schedule-level determinism is unit-tested in
/// `dpm-chaos`; this exercises a full simulation twice.)
#[test]
fn same_seed_replays_the_same_outcome() {
    let a = run_client_server_meter_dup(42);
    let b = run_client_server_meter_dup(42);
    // Both runs completed with invariants intact (the helper panics
    // otherwise) — and the injected schedule prefix is identical, so
    // traffic-independent decisions match exactly.
    let _ = (a, b);
}

/// A meterdaemon crash and restart mid-job: the controller misses the
/// termination notifications the dead daemon would have relayed, and
/// its periodic resync (QueryProc against the restarted daemon) must
/// converge the job table anyway.
#[test]
fn controller_converges_after_daemon_crash_and_restart() {
    let sim = Simulation::builder()
        .machines(["yellow", "red", "green"])
        .seed(42)
        .build();
    let mut control = sim.controller("yellow").expect("controller");
    control.exec("filter f1 green");
    control.exec("newjob foo");
    let out = control.exec("addprocess foo red /bin/A green");
    assert!(out.contains("created"), "{out}");
    let out = control.exec("addprocess foo green /bin/B");
    assert!(out.contains("created"), "{out}");
    control.exec("setflags foo send receive");
    control.exec("startjob foo");

    // Kill red's daemon the moment the job is running, then bring a
    // fresh one up. Any StateChange red's processes produce in the
    // gap is lost — only resync can finish the job.
    let killed = chaos::crash_daemon(sim.cluster(), "red");
    assert!(!killed.is_empty(), "no daemon found on red");
    for pid in killed {
        chaos::await_daemon_death(sim.cluster(), "red", pid);
    }
    assert!(!chaos::daemon_alive(sim.cluster(), "red"));
    chaos::restart_daemon(sim.cluster(), "red");
    assert!(chaos::daemon_alive(sim.cluster(), "red"));

    assert!(
        control.wait_job("foo", 120_000),
        "job table never converged after daemon restart"
    );
    control.exec("die");
    sim.shutdown();
}

/// The log store over a flaky disk: appends tear (half the batch
/// lands, then an error) or fail cleanly on a counter schedule, and
/// the group-commit writer's read-back-and-truncate healing must land
/// every record exactly once anyway.
#[test]
fn store_heals_torn_and_failing_appends() {
    use dpm::crates::chaos::{DiskSpec, FaultyBackend};
    use dpm::crates::logstore::{LogStore, MemBackend, StoreConfig};
    use dpm::crates::meter::{
        MeterBody, MeterHeader, MeterMsg, MeterTermProc, TermReason as MeterTermReason,
    };
    use std::sync::Arc;

    fn record(machine: u16, pid: u32, seq: u32) -> Vec<u8> {
        MeterMsg {
            header: MeterHeader {
                machine,
                seq,
                cpu_time: seq,
                ..MeterHeader::default()
            },
            body: MeterBody::TermProc(MeterTermProc {
                pid,
                pc: 0,
                reason: MeterTermReason::Normal,
            }),
        }
        .encode()
    }

    let spec = DiskSpec {
        torn_every: 3,
        error_every: 5,
    };
    let inner = Arc::new(MemBackend::new());
    let faulty = Arc::new(FaultyBackend::new(inner.clone(), spec));
    let store = LogStore::open(
        faulty.clone(),
        "chaos",
        StoreConfig {
            batch_bytes: 256, // small batches: many flushes hit faults
            ..StoreConfig::default()
        },
    );
    let mut w = store.writer(0);
    for seq in 1..=400u32 {
        w.append(&record(1, 77, seq));
    }
    w.sync();

    // Read back what actually landed on the (healed) substrate.
    let reader = StoreReader::load(inner.as_ref(), "chaos");
    assert_eq!(reader.n_records(), 400, "every accepted record landed");
    if let Err(why) = chaos::invariants::check_exactly_once(&reader) {
        panic!("store corrupted under disk faults ({spec:?}): {why}");
    }
    let st = faulty.stats();
    assert!(
        st.torn > 0 && st.errors > 0,
        "schedule never fired — not a chaos test: {st:?}"
    );
}

const WORKLOAD_HOSTS: [&str; 4] = ["yellow", "red", "green", "blue"];

/// Runs a metered workload job under an injected-fault plan and
/// returns the store-backed trace: the filter renders its own
/// segments through `getlog`, so the text parsed here *is* the store.
fn run_checked_job(
    sim: &Simulation,
    job: &str,
    program: &str,
    parms: &dyn Fn(usize) -> String,
    why: &str,
) -> Trace {
    let mut control = sim.controller("yellow").expect("controller");
    control.exec("filter f1 yellow log=store");
    assert!(control.transcript().contains("created"), "{why}");
    control.exec(&format!("newjob {job} f1"));
    for (i, m) in WORKLOAD_HOSTS.iter().enumerate() {
        let out = control.exec(&format!("addprocess {job} {m} {program} {}", parms(i)));
        assert!(out.contains("created"), "{why}: {out}");
    }
    control.exec(&format!("setflags {job} send receive"));
    control.exec(&format!("startjob {job}"));
    assert!(control.wait_job(job, 120_000), "{why}: job never converged");
    let text = sim.stable_log(&mut control, "f1");
    assert!(!text.is_empty(), "{why}: empty trace");
    control.exec("die");
    Trace::parse(&text)
}

/// Lamport mutex under datagram duplication and delay: the per-peer
/// sequence layer absorbs both, every round completes, and the
/// checker proves — from the trace alone — that mutual exclusion and
/// the timestamp order still hold, with no protocol message lost.
#[test]
fn mutex_rounds_survive_datagram_duplication_and_delay() {
    let mut dups_fired = 0;
    for seed in seeds() {
        let spec = ChaosSpec::new().duplicate(0.25).delay(0.15, 3_000);
        let plan = FaultPlan::new(seed, spec, &WORKLOAD_HOSTS);
        let injector = plan.injector();
        let sim = Simulation::builder()
            .machines(WORKLOAD_HOSTS)
            .net(NetConfig::ideal())
            .seed(seed)
            .fault_injector(injector.clone())
            .build();
        let why = plan.describe();
        let trace = run_checked_job(
            &sim,
            "mx",
            "/bin/lmutex",
            &|i| format!("{i} 4 2 {}", WORKLOAD_HOSTS.join(" ")),
            &why,
        );
        let report = MutexReport::check(&trace);
        // Every round is in the trace, the message bound holds, and
        // nothing was lost. Duplicated deliveries may show up as
        // surplus receives — that is the checker seeing the fault —
        // and when duplicates alias same-length beacons the pairing
        // can knot into a happens-before cycle; the checker must then
        // *say* its order evidence is incomplete (and name duplicated
        // links) rather than assert order it cannot prove.
        assert_eq!(report.intervals.len(), 4 * 2, "[{why}]\n{report}");
        assert!(report.within_bound(), "[{why}]\n{report}");
        // `faults.lost` may name a small tail: a delayed message whose
        // information arrived another way (a later stamp already
        // satisfied the waiter) can land after its receiver exited.
        // The rounds completing above *is* the tolerance claim.
        if report.has_cycle {
            assert!(
                !report.faults.duplicated.is_empty(),
                "cycle without any duplicated delivery on record: [{why}]\n{report}"
            );
        } else {
            assert!(report.violations.is_empty(), "[{why}]\n{report}");
            assert!(report.order_ok, "[{why}]\n{report}");
        }
        sim.shutdown();
        dups_fired += injector.tally().dups();
    }
    assert!(
        dups_fired > 0,
        "no duplication fired across the whole seed matrix"
    );
}

/// Lamport mutex across a partition that opens mid-protocol and never
/// heals: requests crossing the cut are lost, the protocol stalls to
/// its deadline — and the checker *localizes* the fault to exactly
/// the partitioned link, from meter records alone, while proving
/// mutual exclusion was never violated in the rounds that did run.
#[test]
fn mutex_partition_is_localized_by_the_trace_checker() {
    // The window is virtual-time-scripted, so the seed hardly changes
    // the outcome; two seeds keep the run inside the CI budget.
    for seed in seeds().into_iter().take(2) {
        // green↔blue cut from 4 s (virtual) onward; the 1.5 s
        // inter-round gap stretches four rounds well past the window's
        // open, whatever job startup costs.
        let spec = ChaosSpec::new().partition("green", "blue", 4_000_000, 600_000_000);
        let plan = FaultPlan::new(seed, spec, &WORKLOAD_HOSTS);
        let injector = plan.injector();
        let sim = Simulation::builder()
            .machines(WORKLOAD_HOSTS)
            .net(NetConfig::ideal())
            .seed(seed)
            .fault_injector(injector.clone())
            .build();
        let why = plan.describe();
        let trace = run_checked_job(
            &sim,
            "mx",
            "/bin/lmutex",
            &|i| format!("{i} 4 4 {} 1500", WORKLOAD_HOSTS.join(" ")),
            &why,
        );
        let report = MutexReport::check(&trace);
        // Mutual exclusion holds for every critical section that ran.
        assert!(report.violations.is_empty(), "[{why}]\n{report}");
        assert!(report.within_bound(), "[{why}]\n{report}");
        // The fault is localized: protocol messages were lost, and
        // every lossy link the checker names is the partitioned pair.
        assert!(!report.faults.lost.is_empty(), "[{why}]\n{report}");
        let g = sim.cluster().resolve_host("green").expect("green").0;
        let b = sim.cluster().resolve_host("blue").expect("blue").0;
        let cut = (g.min(b), g.max(b));
        for link in report.faults.links() {
            assert_eq!(link, cut, "[{why}]\n{report}");
        }
        sim.shutdown();
    }
}

/// Byzantine agreement under datagram duplication: first-copy-wins
/// dedup absorbs replays, the loyal lieutenants still agree on the
/// loyal-majority value, and the checker still names the traitor —
/// with the exact oral-messages send counts, since duplication forges
/// deliveries, never sends.
#[test]
fn byzantine_agreement_survives_datagram_duplication() {
    let mut dups_fired = 0;
    for seed in seeds() {
        let spec = ChaosSpec::new().duplicate(0.35);
        let plan = FaultPlan::new(seed, spec, &WORKLOAD_HOSTS);
        let injector = plan.injector();
        let sim = Simulation::builder()
            .machines(WORKLOAD_HOSTS)
            .net(NetConfig::ideal())
            .seed(seed)
            .fault_injector(injector.clone())
            .build();
        let why = plan.describe();
        let trace = run_checked_job(
            &sim,
            "byz",
            "/bin/byz",
            &|i| format!("{i} 4 1 2 {}", WORKLOAD_HOSTS.join(" ")),
            &why,
        );
        let report = ByzReport::check(&trace);
        assert_eq!(report.suspected, vec![2], "[{why}]\n{report}");
        // Validity is payload-level — every loyal lieutenant decided
        // the loyal commander's order — and must hold outright.
        // Agreement certification additionally requires sound order
        // evidence: when duplicated deliveries alias same-length
        // beacons into a happens-before cycle, the checker refuses to
        // certify and must have the duplicates on record instead.
        assert!(report.validity_ok(), "[{why}]\n{report}");
        if report.has_cycle {
            assert!(
                !report.faults.duplicated.is_empty(),
                "cycle without any duplicated delivery on record: [{why}]\n{report}"
            );
        } else {
            assert!(report.agreement_ok(), "[{why}]\n{report}");
        }
        assert_eq!(report.r1_sends, 3, "[{why}]\n{report}");
        assert_eq!(report.r2_sends, 6, "[{why}]\n{report}");
        assert!(report.faults.lost.is_empty(), "[{why}]\n{report}");
        sim.shutdown();
        dups_fired += injector.tally().dups();
    }
    assert!(
        dups_fired > 0,
        "no duplication fired across the whole seed matrix"
    );
}

/// A partition between controller and a target machine: RPCs fail
/// visibly while the window is open (bounded retry, no hang) and
/// succeed after the heal; the job then completes normally.
#[test]
fn partition_heals_and_the_session_recovers() {
    // Virtual-time window: open from the start, heals at 3 s. The
    // controller's whole retry budget per request (~0.8 s virtual) is
    // far smaller, so requests inside the window fail fast.
    let spec = ChaosSpec::new().partition("yellow", "red", 0, 3_000_000);
    let plan = FaultPlan::new(7, spec, &["yellow", "red", "green"]);
    let injector = plan.injector();
    let sim = Simulation::builder()
        .machines(["yellow", "red", "green"])
        .seed(7)
        .fault_injector(injector.clone())
        .build();
    let mut control = sim.controller("yellow").expect("controller");
    control.exec("filter f1 green");
    control.exec("newjob j");

    // Inside the window: the RPC layer retries, gives up in bounded
    // time, and the failure is reported — never a hang or a phantom
    // process.
    let out = control.exec("addprocess j red /bin/A green");
    assert!(
        out.contains("cannot") || out.contains("failed"),
        "partitioned addprocess must fail visibly [{}]: {out}",
        plan.describe()
    );
    assert_eq!(control.job("j").map(|j| j.procs.len()), Some(0));

    // Keep retrying: each failed attempt burns virtual time, the
    // window closes, and the same command starts succeeding.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(120);
    loop {
        let out = control.exec("addprocess j red /bin/A green");
        if out.contains("created") {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "partition never healed [{}]: {out}",
            plan.describe()
        );
    }
    let out = control.exec("addprocess j green /bin/B");
    assert!(out.contains("created"), "{out}");
    control.exec("setflags j send receive");
    control.exec("startjob j");
    assert!(
        control.wait_job("j", 120_000),
        "job after heal never completed [{}]",
        plan.describe()
    );
    assert!(
        injector.tally().blocked_connects() > 0,
        "window never blocked a connection [{}]",
        plan.describe()
    );
    control.exec("die");
    sim.shutdown();
}

/// A two-level filter tree under partition *and* meter-flush
/// duplication: edges on the job's machines forward to a store-backed
/// aggregate root on blue, the edge→root link on red partitions
/// mid-job, and flush batches duplicate. The partition delays the
/// edge's established stream until the heal and refuses new
/// connections (the edge's upstream backoff outwaits it); the edge's
/// sequence dedup absorbs the duplicated flushes. The invariant is
/// the tree's whole point: no accepted record lost or duplicated at
/// the root.
fn run_tree_partition_dup(seed: u64) -> u64 {
    let spec = ChaosSpec::new()
        .meter_dup(0.35)
        .partition("red", "blue", 100_000, 2_000_000);
    let plan = FaultPlan::new(seed, spec, &["yellow", "red", "green", "blue"]);
    let injector = plan.injector();
    let sim = Simulation::builder()
        .machines(["yellow", "red", "green", "blue"])
        .seed(seed)
        .fault_injector(injector.clone())
        .build();
    let mut control = sim.controller("yellow").expect("controller");
    control.exec("filter root blue role=aggregate log=store");
    control.exec("filter e1 red role=edge upstream=root");
    control.exec("filter e2 green role=edge upstream=root");
    control.exec("newjob foo root");
    control.exec("addprocess foo red /bin/A green");
    control.exec("addprocess foo green /bin/B");
    control.exec("setflags foo send receive fork accept connect");
    control.exec("startjob foo");
    assert!(
        control.wait_job("foo", 120_000),
        "job never converged [{}]",
        plan.describe()
    );
    control.exec("removejob foo");

    // Drain the root: getlog until stable, then read the segments off
    // blue directly.
    let text = sim.stable_log(&mut control, "root");
    assert!(!text.is_empty(), "empty root trace [{}]", plan.describe());
    let blue = sim.cluster().machine("blue").expect("blue");
    let backend = SimFsBackend::new(blue);
    let reader = StoreReader::load(&backend, "/usr/tmp/log.root");
    assert!(
        reader.n_records() > 0,
        "empty root store [{}]",
        plan.describe()
    );
    // Both sequence invariants: the edges keep everything (no
    // selection templates installed), so every record the meters
    // emitted must appear at the root exactly once — the partition may
    // only delay it, the duplication may not multiply it.
    if let Err(why) = chaos::invariants::check_exactly_once(&reader) {
        panic!("{why} [{}]", plan.describe());
    }
    // And the trace is analyzable end to end from the root.
    let trace = Trace::parse(&text);
    assert!(!trace.is_empty(), "untypable trace [{}]", plan.describe());
    control.exec("die");
    sim.shutdown();
    injector.tally().meter_dups()
}

#[test]
fn filter_tree_survives_partition_and_meter_duplication() {
    let mut fired = 0;
    for seed in seeds() {
        fired += run_tree_partition_dup(seed);
    }
    assert!(
        fired > 0,
        "no duplicate flush fired across the whole seed matrix"
    );
}

/// Whether every process of `job` reached a terminal state — the
/// non-blocking twin of `wait_job`, so a watch loop can poll between
/// liveness checks.
fn job_done(control: &Controller, job: &str) -> bool {
    match control.job(job) {
        None => true,
        Some(j) => j
            .procs
            .iter()
            .all(|p| matches!(p.state, ProcState::Killed | ProcState::Acquired)),
    }
}

/// The live layer localizes a partition *while the job still runs*:
/// the same green↔blue cut as the post-hoc localization test above,
/// but the verdict must arrive from `watch` windows before quiescence
/// — the top lossy link is the cut (with margin), and the most
/// anomalous process sits on one of its ends. This is the paper's
/// real-time-filter claim made falsifiable: no post-mortem analysis,
/// the streaming state alone names the fault.
#[test]
fn live_watch_localizes_partition_before_quiescence() {
    // Two seeds, like the post-hoc twin: the window is virtual-time
    // scripted, so seeds mostly shuffle scheduling. A *from-boot* cut
    // (unlike the mid-run one above) keeps green and blue inside the
    // readiness barrier, whose HELLO retransmits pile unmatched sends
    // onto exactly the partitioned link for as long as it stays open —
    // the strongest streaming signature a silent cut produces.
    for seed in seeds().into_iter().take(2) {
        let spec = ChaosSpec::new().partition("green", "blue", 0, 600_000_000);
        let plan = FaultPlan::new(seed, spec, &WORKLOAD_HOSTS);
        let injector = plan.injector();
        let sim = Simulation::builder()
            .machines(WORKLOAD_HOSTS)
            .net(NetConfig::ideal())
            .seed(seed)
            .fault_injector(injector.clone())
            .build();
        let why = plan.describe();
        let g = sim.cluster().resolve_host("green").expect("green").0;
        let b = sim.cluster().resolve_host("blue").expect("blue").0;
        let cut = (g.min(b), g.max(b));

        let mut control = sim.controller("yellow").expect("controller");
        control.exec("filter f1 yellow log=store");
        assert!(control.transcript().contains("created"), "{why}");
        control.exec("newjob mx f1");
        for (i, m) in WORKLOAD_HOSTS.iter().enumerate() {
            let out = control.exec(&format!(
                "addprocess mx {m} /bin/lmutex {i} 4 2 {}",
                WORKLOAD_HOSTS.join(" ")
            ));
            assert!(out.contains("created"), "{why}: {out}");
        }
        control.exec("setflags mx send receive");
        control.exec("startjob mx");

        // Poll the watch continuously (workload sleeps are virtual, so
        // the run is short in wall-clock terms). Localized means: the
        // top lossy link is the cut, clearly ahead of any runner-up,
        // and the top anomaly score names a process on the cut.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(110);
        let mut localized_live = false;
        while !job_done(&control, "mx") {
            control.exec("watch f1 anomalies");
            if job_done(&control, "mx") {
                break;
            }
            if let Some(snap) = control.last_window("f1") {
                let runner_up = snap.link_lag.get(1).map_or(0, |&(_, _, n)| n);
                let link_hit = snap
                    .link_lag
                    .first()
                    .is_some_and(|&(a, z, n)| (a, z) == cut && n >= 5 && n >= 3 * runner_up);
                let proc_hit = snap
                    .anomalies
                    .first()
                    .is_some_and(|s| s.proc.machine == g || s.proc.machine == b);
                if link_hit && proc_hit {
                    localized_live = true;
                    break;
                }
            }
            assert!(
                std::time::Instant::now() < deadline,
                "job never converged while watching [{why}]"
            );
        }
        assert!(
            localized_live,
            "watch never localized the cut before quiescence [{why}]"
        );
        assert!(
            control.wait_job("mx", 120_000),
            "{why}: job never converged"
        );
        control.exec("die");
        sim.shutdown();
    }
}
