//! Controller behaviours beyond the happy path: the Fig. 4.2 state
//! machine enforced end to end, `source`/`sink` scripting, `jobs`
//! listings, `die` protection, and error reporting.

use dpm::{ProcState, Simulation};

#[test]
fn stop_resume_remove_cycle() {
    let sim = Simulation::builder()
        .machines(["yellow", "red"])
        .seed(21)
        .build();
    // A long-running spinner we can stop and kill.
    sim.cluster().register_program("spin", |p, _| loop {
        p.compute_ms(1)?;
    });
    sim.cluster()
        .install_program_file("red", "/bin/spin", "spin");

    let mut control = sim.controller("yellow").expect("controller");
    control.exec("filter f1 red");
    control.exec("newjob j");
    control.exec("addprocess j red /bin/spin");
    assert_eq!(control.job("j").unwrap().procs[0].state, ProcState::New);

    // removejob must refuse while a process is new (the Fig. 4.2
    // precaution: no direct new → killed).
    let out = control.exec("removejob j");
    assert!(out.contains("not removed"), "{out}");

    control.exec("startjob j");
    assert_eq!(control.job("j").unwrap().procs[0].state, ProcState::Running);

    // Starting a running process is refused with an explanation.
    let out = control.exec("startjob j");
    assert!(out.contains("cannot be started"), "{out}");

    // Stop, then resume, then stop and remove (remove kills stopped).
    control.exec("stopjob j");
    assert_eq!(control.job("j").unwrap().procs[0].state, ProcState::Stopped);
    control.exec("startjob j");
    assert_eq!(control.job("j").unwrap().procs[0].state, ProcState::Running);
    control.exec("stopjob j");
    let out = control.exec("removejob j");
    assert!(out.contains("removed"), "{out}");
    assert!(control.job("j").is_none());

    control.exec("die");
    sim.shutdown();
}

#[test]
fn newjob_requires_a_filter_and_commands_validate_arguments() {
    let sim = Simulation::builder().machines(["yellow"]).seed(1).build();
    let mut control = sim.controller("yellow").expect("controller");

    let out = control.exec("newjob foo");
    assert!(out.contains("cannot be created before a filter"), "{out}");

    let out = control.exec("addprocess nope red /bin/A");
    assert!(out.contains("no job named"), "{out}");

    let out = control.exec("startjob nope");
    assert!(out.contains("no job named"), "{out}");

    let out = control.exec("filter f1 mars");
    assert!(out.contains("unknown machine"), "{out}");

    let out = control.exec("blargh");
    assert!(out.contains("unknown command"), "{out}");

    let out = control.exec("help");
    assert!(out.contains("setflags"), "{out}");
    assert!(out.contains("Meter flags"), "{out}");

    control.exec("filter f1");
    let out = control.exec("filter f1");
    assert!(out.contains("already exists"), "{out}");

    control.exec("newjob foo");
    let out = control.exec("setflags foo sned");
    assert!(out.contains("unknown flag 'sned'"), "{out}");

    let out = control.exec("addprocess foo yellow /bin/no-such-file");
    assert!(out.contains("not found"), "{out}");

    control.exec("die");
    sim.shutdown();
}

#[test]
fn source_runs_scripts_and_sink_redirects_output() {
    let sim = Simulation::builder()
        .machines(["yellow", "red", "green", "blue"])
        .seed(42)
        .build();
    let mut control = sim.controller("yellow").expect("controller");
    let yellow = sim.cluster().machine("yellow").unwrap();
    let fs = yellow.fs();

    // The Appendix-B session as a command script, with its output
    // sunk to a file, exactly as §4.3 describes.
    fs.write(
        "session.cmd",
        "\
sink session.out
filter f1 blue
newjob foo
addprocess foo red /bin/A green
addprocess foo green /bin/B
setflags foo send receive fork accept connect
startjob foo
sink
"
        .as_bytes()
        .to_vec(),
    );
    control.exec("source session.cmd");
    assert!(control.wait_job("foo", 60_000));

    let out = fs.read_string("session.out").expect("sunk output");
    assert!(out.contains("filter 'f1' ... created"), "{out}");
    assert!(out.contains("'B' started."), "{out}");
    // The terminal transcript contains the prompts but not those
    // sunk lines.
    assert!(!control.transcript().contains("'B' started."));

    control.exec("removejob foo");
    control.exec("die");
    sim.shutdown();
}

#[test]
fn source_nesting_is_limited_to_sixteen() {
    let sim = Simulation::builder().machines(["yellow"]).seed(2).build();
    let mut control = sim.controller("yellow").expect("controller");
    let yellow = sim.cluster().machine("yellow").unwrap();
    let fs = yellow.fs();
    // A self-sourcing script would recurse forever without the limit.
    fs.write("loop.cmd", "source loop.cmd\n".as_bytes().to_vec());
    let out = control.exec("source loop.cmd");
    assert!(out.contains("nested too deeply"), "{out}");
    control.exec("die");
    sim.shutdown();
}

#[test]
fn die_warns_once_when_processes_are_active() {
    let sim = Simulation::builder()
        .machines(["yellow", "red"])
        .seed(3)
        .build();
    sim.cluster().register_program("spin", |p, _| loop {
        p.compute_ms(1)?;
    });
    sim.cluster()
        .install_program_file("red", "/bin/spin", "spin");
    let mut control = sim.controller("yellow").expect("controller");
    control.exec("filter f1 red");
    control.exec("newjob j");
    control.exec("addprocess j red /bin/spin");
    control.exec("startjob j");

    let out = control.exec("die");
    assert!(out.contains("still active"), "{out}");
    assert!(!control.is_done());
    // "If the user immediately repeats the die command … the
    // controller will assume the user is aware of the situation and
    // exits with the processes active." (§4.3)
    control.exec("die");
    assert!(control.is_done());
    sim.shutdown();
}

#[test]
fn jobs_listing_shows_processes_and_flags() {
    let sim = Simulation::builder()
        .machines(["yellow", "red", "green", "blue"])
        .seed(4)
        .build();
    let mut control = sim.controller("yellow").expect("controller");
    let out = control.exec("jobs");
    assert!(out.contains("no jobs"), "{out}");
    control.exec("filter f1 blue");
    control.exec("newjob foo");
    control.exec("addprocess foo red /bin/A green");
    control.exec("setflags foo send");
    let out = control.exec("jobs");
    assert!(out.contains("foo"), "{out}");
    assert!(out.contains("filter=f1"), "{out}");
    let out = control.exec("jobs foo");
    assert!(out.contains("new"), "{out}");
    assert!(out.contains("red"), "{out}");
    assert!(out.contains("flags: send"), "{out}");
    control.exec("die");
    control.exec("die");
    sim.shutdown();
}

#[test]
fn input_command_feeds_a_process_and_its_output_reaches_the_transcript() {
    let sim = Simulation::builder()
        .machines(["yellow", "red"])
        .seed(5)
        .build();
    // An interactive program: reads one line from stdin, echoes it to
    // stdout in upper case, exits.
    sim.cluster().register_program("shout", |p, _| {
        if let Some(line) = p.read_line(0)? {
            p.write(1, format!("{}!\n", line.to_uppercase()).as_bytes())?;
        }
        Ok(())
    });
    sim.cluster()
        .install_program_file("red", "/bin/shout", "shout");

    let mut control = sim.controller("yellow").expect("controller");
    control.exec("filter f1 red");
    control.exec("newjob j");
    control.exec("addprocess j red /bin/shout");
    control.exec("startjob j");
    // Feed its redirected standard input through the daemon (§3.5.2).
    control.exec("input j shout hello distributed world");
    assert!(control.wait_job("j", 30_000), "shout exited");
    // The redirected output came back as an IoData notification and
    // was printed as `shout> …`.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        control.pump();
        if control
            .transcript()
            .contains("shout> HELLO DISTRIBUTED WORLD!")
        {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "transcript: {}",
            control.transcript()
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    control.exec("removejob j");
    control.exec("die");
    sim.shutdown();
}

#[test]
fn addprocess_redirects_standard_input_from_a_file() {
    let sim = Simulation::builder()
        .machines(["yellow", "red"])
        .seed(6)
        .build();
    // wc -l, more or less: count stdin lines until end-of-file.
    sim.cluster().register_program("linecount", |p, _| {
        let mut n = 0;
        while let Some(_line) = p.read_line(0)? {
            n += 1;
        }
        p.write(1, format!("{n} lines\n").as_bytes())?;
        Ok(())
    });
    sim.cluster()
        .install_program_file("red", "/bin/linecount", "linecount");

    let mut control = sim.controller("yellow").expect("controller");
    // The input file exists only on the controller's machine; the
    // controller must rcp it to red (§3.5.2/§3.5.3).
    let yellow = sim.cluster().machine("yellow").unwrap();
    yellow
        .fs()
        .write("input.txt", b"alpha\nbeta\ngamma\n".to_vec());

    control.exec("filter f1 red");
    control.exec("newjob j");
    control.exec("addprocess j red /bin/linecount < input.txt");
    control.exec("startjob j");
    assert!(control.wait_job("j", 30_000), "linecount exited");
    // Its stdout came back through the gateway.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        control.pump();
        if control.transcript().contains("linecount> 3 lines") {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "transcript: {}",
            control.transcript()
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    control.exec("removejob j");
    control.exec("die");
    sim.shutdown();
}

#[test]
fn removeprocess_removes_one_process_and_respects_states() {
    let sim = Simulation::builder()
        .machines(["yellow", "red"])
        .seed(7)
        .build();
    sim.cluster().register_program("spin2", |p, _| loop {
        p.compute_ms(1)?;
    });
    sim.cluster()
        .install_program_file("red", "/bin/spin2", "spin2");
    let mut control = sim.controller("yellow").expect("controller");
    control.exec("filter f1 red");
    control.exec("newjob j");
    control.exec("addprocess j red /bin/spin2");
    control.exec("addprocess j red /bin/spin2");
    control.exec("startjob j");
    assert_eq!(control.job("j").unwrap().procs.len(), 2);

    // Removing a running process is refused (Fig. 4.2).
    let out = control.exec("removeprocess j spin2");
    assert!(out.contains("stop it before removing"), "{out}");

    control.exec("stopjob j");
    let out = control.exec("removeprocess j spin2");
    assert!(out.contains("'spin2' removed"), "{out}");
    assert_eq!(control.job("j").unwrap().procs.len(), 1);

    let out = control.exec("removeprocess j nosuch");
    assert!(out.contains("no process"), "{out}");

    control.exec("removejob j");
    control.exec("die");
    sim.shutdown();
}
