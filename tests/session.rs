//! End-to-end reproduction of the Appendix-B measurement session, and
//! checks that the resulting trace has the structure the paper
//! describes (Figs. 4.3–4.6).

use dpm::crates::analysis::{Analysis, EventKind};
use dpm::Simulation;

/// One session shared by every test in this file (sessions are real
/// multi-threaded simulations; no need to run five of them).
fn run_session() -> (String, Analysis) {
    static SESSION: std::sync::OnceLock<(String, Analysis)> = std::sync::OnceLock::new();
    SESSION.get_or_init(run_session_uncached).clone()
}

fn run_session_uncached() -> (String, Analysis) {
    let sim = Simulation::builder()
        .machines(["yellow", "red", "green", "blue"])
        .seed(42)
        .build();
    let mut control = sim.controller("yellow").expect("controller");
    control.exec("filter f1 blue");
    control.exec("newjob foo");
    control.exec("addprocess foo red /bin/A green");
    control.exec("addprocess foo green /bin/B");
    control.exec("setflags foo send receive fork accept connect");
    control.exec("startjob foo");
    assert!(control.wait_job("foo", 60_000), "job foo completed");
    control.exec("removejob foo");
    control.exec("getlog f1 trace");
    // Analyze a *stabilized* copy (flushes travel asynchronously).
    let analysis = Analysis::of_log(&sim.stable_log(&mut control, "f1"));
    control.exec("bye");
    assert!(control.is_done());
    let transcript = control.transcript().to_owned();
    sim.shutdown();
    (transcript, analysis)
}

#[test]
fn transcript_matches_appendix_b_shape() {
    let (t, _) = run_session();
    // The prompts and responses of the Appendix-B script.
    assert!(t.contains("<Control> filter f1 blue"), "{t}");
    assert!(t.contains("filter 'f1' ... created: identifier="), "{t}");
    assert!(t.contains("process 'A' ... created: identifier="), "{t}");
    assert!(t.contains("process 'B' ... created: identifier="), "{t}");
    assert!(
        t.contains("new job flags = fork send receive accept connect"),
        "{t}"
    );
    assert!(t.contains("Process 'A' : Flags set"), "{t}");
    assert!(t.contains("Process 'B' : Flags set"), "{t}");
    assert!(t.contains("'A' started."), "{t}");
    assert!(t.contains("'B' started."), "{t}");
    assert!(
        t.contains("DONE: process A in job 'foo' terminated: reason: normal"),
        "{t}"
    );
    assert!(
        t.contains("DONE: process B in job 'foo' terminated: reason: normal"),
        "{t}"
    );
    assert!(t.contains("'A' removed"), "{t}");
    assert!(t.contains("'B' removed"), "{t}");
}

#[test]
fn trace_contains_the_metered_event_kinds_and_only_those() {
    let (_, a) = run_session();
    assert!(!a.trace.is_empty(), "trace has events");
    let mut kinds: Vec<&str> = a.trace.events.iter().map(|e| e.kind.name()).collect();
    kinds.sort_unstable();
    kinds.dedup();
    // Flags were send receive fork accept connect — so no socket,
    // dup, destsocket, receivecall, or termproc records.
    for k in &kinds {
        assert!(
            ["send", "receive", "fork", "accept", "connect"].contains(k),
            "unexpected event kind {k}"
        );
    }
    for want in ["send", "receive", "fork", "accept", "connect"] {
        assert!(kinds.contains(&want), "missing event kind {want}");
    }
}

#[test]
fn connection_pairing_recovers_a_to_b() {
    let (_, a) = run_session();
    assert_eq!(a.pairing.connections.len(), 1, "one A→B connection");
    let c = &a.pairing.connections[0];
    // A runs on red (machine 1 in our ordering yellow=0 red=1 …),
    // B on green (machine 2).
    assert_eq!(c.client.0.machine, 1, "connector on red");
    assert_eq!(c.server.0.machine, 2, "acceptor on green");
    // Request/reply traffic flows both ways and all of it matches.
    assert!(a.stats.matched >= 10, "5 rounds × 2 directions matched");
    // Exactly two sends stay unmatched: A's and B's final writes to
    // their redirected standard output. Those travel to the (unmetered)
    // meterdaemon's gateway, so no receive record can exist for them —
    // the monitor is faithfully reporting its own I/O plumbing.
    assert_eq!(
        a.pairing.unmatched_sends.len(),
        2,
        "only the stdout gateway writes are unmatched"
    );
}

#[test]
fn fork_event_records_the_child() {
    let (_, a) = run_session();
    let forks: Vec<_> = a
        .trace
        .events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::Fork { child } => Some((e.proc, child)),
            _ => None,
        })
        .collect();
    assert_eq!(forks.len(), 1, "A forked once");
    let (parent, child) = forks[0];
    assert_ne!(parent.pid, child);
}

#[test]
fn happens_before_orders_the_conversation() {
    let (_, a) = run_session();
    // Every matched message's send precedes its receive, and the
    // whole request/reply conversation is heavily ordered.
    for m in &a.pairing.messages {
        assert!(
            a.hb.precedes(m.send_idx, m.recv_idx),
            "send {} → recv {}",
            m.send_idx,
            m.recv_idx
        );
    }
    assert!(a.hb.ordered_fraction() > 0.5);
    assert!(a.hb.clock_anomalies(&a.trace).is_empty());
}
