//! Custom filters: "given one basic constraint, a user can write a
//! custom filter. This one constraint is that a filter process must
//! listen to its standard input in order to receive meter messages
//! from the kernel meter." (§3.4)
//!
//! Here the user registers their own filter program — one that does
//! not log records at all but maintains a running per-event-type
//! census — and tells the controller to use it via the `filterfile`
//! argument of the `filter` command.

use dpm::crates::filter::Descriptions;
use dpm::Simulation;

#[test]
fn a_user_written_filter_runs_in_place_of_the_standard_one() {
    let sim = Simulation::builder()
        .machines(["yellow", "red", "green"])
        .seed(77)
        .build();

    // The custom filter: accepts meter connections, counts records by
    // event name, and (re)writes a census file instead of a log.
    sim.cluster().register_program("censusfilter", |p, args| {
        let port: u16 = args[0].parse().unwrap_or(0);
        let logfile = args.get(1).cloned().unwrap_or_else(|| "census".into());
        let l = p.socket(
            dpm::crates::simos::Domain::Inet,
            dpm::crates::simos::SockType::Stream,
        )?;
        p.bind(l, dpm::crates::simos::BindTo::Port(port))?;
        p.listen(l, 8)?;
        loop {
            let (conn, _) = p.accept(l)?;
            let log = logfile.clone();
            p.fork_with(move |c| {
                let desc = Descriptions::standard();
                let mut counts: std::collections::BTreeMap<String, u32> =
                    std::collections::BTreeMap::new();
                let mut buf: Vec<u8> = Vec::new();
                loop {
                    let data = c.read(conn, 4096)?;
                    if data.is_empty() {
                        break;
                    }
                    buf.extend_from_slice(&data);
                    while buf.len() >= 4 {
                        let size = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
                        if size < 24 || buf.len() < size {
                            break;
                        }
                        let rec: Vec<u8> = buf.drain(..size).collect();
                        if let Some(t) = Descriptions::record_type(&rec) {
                            if let Some(e) = desc.event(t) {
                                *counts.entry(e.name.clone()).or_insert(0) += 1;
                            }
                        }
                    }
                }
                let mut out = String::new();
                for (name, n) in &counts {
                    out.push_str(&format!("{name} {n}\n"));
                }
                c.machine().fs().write(&log, out.into_bytes());
                c.close(conn)?;
                Ok(())
            })?;
            p.close(conn)?;
        }
    });
    sim.cluster()
        .install_program_file("green", "/bin/censusfilter", "censusfilter");

    let mut control = sim.controller("yellow").expect("controller");
    control.exec("filter census green /bin/censusfilter");
    control.exec("newjob foo census");
    control.exec("addprocess foo red /bin/A red 1750 4");
    control.exec("addprocess foo red /bin/B 1750");
    control.exec("setflags foo all");
    control.exec("startjob foo");
    assert!(control.wait_job("foo", 60_000), "job completed");
    control.exec("removejob foo");

    // The census file replaced the usual trace log. Give the filter
    // children a moment to flush after EOF.
    let green = sim.cluster().machine("green").unwrap();
    let mut census = String::new();
    for _ in 0..200 {
        if let Some(text) = green.fs().read_string("/usr/tmp/log.census") {
            census = text;
            if census.contains("termproc") {
                break;
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    assert!(census.contains("send"), "census counts sends: {census:?}");
    assert!(
        census.contains("receive"),
        "census counts receives: {census:?}"
    );

    control.exec("die");
    sim.shutdown();
}
