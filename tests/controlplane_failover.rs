//! Controller failover under chaos, across a seed matrix.
//!
//! The control plane's claim is that a controller is no longer a
//! single point of failure: every mutation it performs is appended to
//! a replicated control log, its ownership of each job is a lease in
//! simulated time, and a standby that replays the log can adopt the
//! jobs the moment the lease lapses. These tests kill the owning
//! controller mid-job and verify the claim end to end:
//!
//! * the standby's takeover happens within one lease period of the
//!   old owner's expiry;
//! * the surviving filter trace is *identical* to a crash-free run of
//!   the same seed (after canonicalizing pids, ephemeral ports, and
//!   clock stamps — the only things a takeover may legitimately
//!   perturb): no record lost, none duplicated;
//! * the control log itself passes the failover invariants — one
//!   creation per job, exactly one terminal state, no orphaned filter,
//!   a linear lease chain (`check_control_plane`).
//!
//! The scaled-acquire benchmark measures the batched `AcquireMany`
//! path adopting a fleet of over a thousand already-running processes
//! in one round-trip per machine, against the classic per-pid
//! `acquire`. Numbers land in `BENCH_controlplane.json` via
//! `DPM_BENCH_OUT`.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

use dpm::bench_report::BenchEntry;
use dpm::crates::analysis::{EventKind, Trace};
use dpm::crates::chaos::{crash_controller, invariants};
use dpm::crates::controlplane::{ControlEvent, ControlLog, DEFAULT_LEASE_MS};
use dpm::crates::logstore::{Backend, MemBackend, StoreReader};
use dpm::{Pid, Simulation, Uid};

/// The seed matrix: `DPM_CHAOS_SEEDS="1,2,3"` overrides; CI passes
/// its fixed seeds, the local default is a fast subset.
fn seeds() -> Vec<u64> {
    match std::env::var("DPM_CHAOS_SEEDS") {
        Ok(s) => {
            let parsed: Vec<u64> = s.split(',').filter_map(|t| t.trim().parse().ok()).collect();
            assert!(
                !parsed.is_empty(),
                "DPM_CHAOS_SEEDS set but unparsable: {s}"
            );
            parsed
        }
        Err(_) => vec![11, 42, 97, 512],
    }
}

/// Where the control log lives on the shared backend — the durable
/// storage both the owner and the standby can reach.
const CONTROL_DIR: &str = "control";

/// What one session run leaves behind for comparison.
struct RunResult {
    trace: Trace,
    transcript: String,
    backend: Arc<MemBackend>,
    /// Simulated-time takeover latency (standby's lease start minus
    /// the lapsed lease's expiry), when the run crashed the owner.
    takeover_latency_us: Option<u64>,
}

/// Runs one measured A/B session with the control log enabled. With
/// `crash` set, the owning controller is SIGKILLed right after
/// `startjob` and a standby on another terminal adopts the job from
/// the log; otherwise the owner runs the job to completion itself.
fn run_session(seed: u64, crash: bool) -> RunResult {
    let backend = Arc::new(MemBackend::new());
    let sim = Simulation::builder()
        .machines(["term1", "term2", "red", "green"])
        .seed(seed)
        .build();
    let mut a = sim.controller_as("term1", Uid(100)).expect("controller A");
    a.enable_control_log(backend.clone() as Arc<dyn Backend>, CONTROL_DIR);
    a.exec("filter f1 red");
    a.exec("newjob pair");
    a.exec("addprocess pair red /bin/A green 1810 3");
    a.exec("addprocess pair green /bin/B 1810");
    a.exec("setflags pair send receive accept connect fork");
    a.exec("startjob pair");

    let mut survivor = if crash {
        let killed = crash_controller(sim.cluster(), "term1");
        assert!(
            !killed.is_empty(),
            "seed {seed}: no controller process to kill on term1"
        );
        let mut b = sim.controller_as("term2", Uid(100)).expect("controller B");
        let adopted = b.adopt_from(backend.clone() as Arc<dyn Backend>, CONTROL_DIR);
        assert_eq!(
            adopted,
            vec!["pair".to_owned()],
            "seed {seed}: standby adopted the live job"
        );
        b
    } else {
        a
    };

    assert!(
        survivor.wait_job("pair", 60_000),
        "seed {seed}: job converged (crash={crash})"
    );

    // Every process transition was recorded before the job is
    // removed: the log alone must already show one terminal state per
    // process.
    let reader = StoreReader::load(backend.as_ref(), CONTROL_DIR);
    let census = invariants::check_control_plane(&reader).unwrap_or_else(|e| {
        panic!(
            "seed {seed}: control-plane invariant violated before removejob (crash={crash}): {e}"
        )
    });
    assert_eq!(census.jobs_created, 1);
    assert_eq!(census.jobs_live, 1);

    let takeover_latency_us = if crash {
        Some(takeover_latency(&reader, seed))
    } else {
        None
    };

    survivor.exec("removejob pair");
    let text = sim.stable_log(&mut survivor, "f1");
    let trace = Trace::parse(&text);
    let transcript = survivor.transcript().to_owned();
    survivor.exec("die");
    sim.shutdown();

    // And the invariants still hold over the completed log.
    let reader = StoreReader::load(backend.as_ref(), CONTROL_DIR);
    invariants::check_control_plane(&reader).unwrap_or_else(|e| {
        panic!("seed {seed}: control-plane invariant violated at end of log (crash={crash}): {e}")
    });

    RunResult {
        trace,
        transcript,
        backend,
        takeover_latency_us,
    }
}

/// The standby's takeover latency in simulated µs: its `LeaseAcquired`
/// start minus the lapsed lease's expiry. Asserts the takeover
/// happened at all and under one lease period.
fn takeover_latency(reader: &StoreReader, seed: u64) -> u64 {
    let mut prev_expiry = None;
    let mut latency = None;
    for (_, ev) in ControlLog::replay(reader) {
        match ev {
            ControlEvent::LeaseAcquired {
                owner,
                at_us,
                expires_us,
                ..
            } => {
                if owner.starts_with("term2:") {
                    let lapsed = prev_expiry.expect("a prior lease existed");
                    latency = Some(at_us.saturating_sub(lapsed));
                }
                prev_expiry = Some(expires_us);
            }
            ControlEvent::LeaseRenewed { expires_us, .. } => prev_expiry = Some(expires_us),
            _ => {}
        }
    }
    let latency = latency.unwrap_or_else(|| panic!("seed {seed}: standby never took the lease"));
    assert!(
        latency <= DEFAULT_LEASE_MS * 1_000,
        "seed {seed}: takeover took {latency}us, more than one lease period"
    );
    latency
}

/// A trace reduced to what a takeover may not perturb: per process,
/// the ordered event kinds with their deterministic payloads. Pids
/// and clock stamps are dropped (a second controller shifts global
/// pid allocation and simulated time) and socket names keep only
/// their machine part (client ports are ephemeral); everything else —
/// event order per process, payload lengths, fork/term structure —
/// must match a crash-free run exactly.
fn canonical(trace: &Trace) -> Vec<(u32, Vec<String>)> {
    fn name_part(n: &Option<String>) -> String {
        match n {
            None => String::new(),
            Some(n) => n
                .rsplit_once(':')
                .map_or_else(|| n.clone(), |(head, _)| head.to_owned()),
        }
    }
    let mut per: BTreeMap<(u32, u32), Vec<String>> = BTreeMap::new();
    for e in &trace.events {
        let shape = match &e.kind {
            EventKind::Send { len, dest } => format!("send:{len}:{}", name_part(dest)),
            EventKind::Recv { len, source } => format!("receive:{len}:{}", name_part(source)),
            EventKind::Socket { domain, sock_type } => format!("socket:{domain}:{sock_type}"),
            EventKind::Dup { new_sock } => format!("dup:{new_sock}"),
            EventKind::Accept {
                sock_name,
                peer_name,
                ..
            } => format!("accept:{}:{}", name_part(sock_name), name_part(peer_name)),
            EventKind::Connect {
                sock_name,
                peer_name,
            } => format!("connect:{}:{}", name_part(sock_name), name_part(peer_name)),
            EventKind::Term { reason } => format!("termproc:{reason}"),
            other => other.name().to_owned(),
        };
        per.entry((e.proc.machine, e.proc.pid))
            .or_default()
            .push(shape);
    }
    // Drop the pid, keep the machine: which machine ran the process
    // is stable, the pid itself is allocation-order noise.
    let mut v: Vec<(u32, Vec<String>)> = per.into_iter().map(|((m, _), evs)| (m, evs)).collect();
    v.sort();
    v
}

/// The headline failover property, across the seed matrix: kill the
/// owning controller mid-job, the standby adopts within one lease
/// period, and the final trace is identical to a crash-free run of
/// the same seed under canonicalization — no record lost or
/// duplicated by the takeover.
#[test]
fn controller_crash_is_invisible_in_the_trace() {
    let mut latencies = Vec::new();
    for seed in seeds() {
        let clean = run_session(seed, false);
        let crashed = run_session(seed, true);

        assert!(
            crashed
                .transcript
                .contains("job 'pair' adopted (owner now term2:"),
            "seed {seed}: standby transcript proves the takeover:\n{}",
            crashed.transcript
        );
        assert!(
            !clean.trace.is_empty(),
            "seed {seed}: crash-free run produced a trace"
        );
        assert_eq!(
            crashed.trace.events.len(),
            clean.trace.events.len(),
            "seed {seed}: takeover lost or duplicated records"
        );
        assert_eq!(
            canonical(&crashed.trace),
            canonical(&clean.trace),
            "seed {seed}: canonical traces diverge after takeover"
        );
        // The crashed run's log holds the full lease story: owner's
        // acquisition, the standby's takeover, linear chain. (The
        // chain itself was already checked by check_control_plane.)
        let reader = StoreReader::load(crashed.backend.as_ref(), CONTROL_DIR);
        let events = ControlLog::replay(&reader);
        assert!(
            events.iter().any(|(_, ev)| matches!(
                ev,
                ControlEvent::LeaseAcquired { owner, .. } if owner.starts_with("term1:")
            )),
            "seed {seed}: owner's original lease is in the log"
        );
        latencies.push(crashed.takeover_latency_us.expect("crashed run measured"));
    }
    latencies.sort_unstable();
    let entry = BenchEntry::new("controlplane_failover")
        .int("seeds", latencies.len() as u64)
        .int("takeover_latency_us_min", latencies[0])
        .int("takeover_latency_us_median", latencies[latencies.len() / 2])
        .int(
            "takeover_latency_us_max",
            *latencies.last().expect("nonempty"),
        )
        .int("lease_period_us", DEFAULT_LEASE_MS * 1_000);
    let path = dpm::bench_report::record(&entry).expect("write bench snapshot");
    println!("failover bench -> {}", path.display());
}

/// Spawns `n` long-running unmetered processes on `machine` — the
/// "already running distributed computation" an operator would adopt.
/// Each idles in real time (a tight virtual-sleep loop across a
/// thousand threads would monopolize the simulated kernel), touching
/// the kernel only often enough to notice a pending kill.
fn spawn_sleepers(sim: &Simulation, machine: &str, n: usize) -> Vec<Pid> {
    (0..n)
        .map(|_| {
            sim.cluster()
                .spawn_user(machine, "sleeper", Uid(100), |p| loop {
                    std::thread::sleep(std::time::Duration::from_millis(50));
                    p.sleep_ms(0)?;
                })
                .expect("spawn sleeper")
        })
        .collect()
}

/// Adopting a fleet: over a thousand already-running processes are
/// metered into a job with one `AcquireMany` round-trip per machine,
/// and the batched path beats per-pid `acquire` per process. Numbers
/// go to `BENCH_controlplane.json`.
#[test]
fn acquire_many_meters_a_thousand_processes() {
    const PER_MACHINE: usize = 400;
    let machines = ["red", "green", "blue"];
    let sim = Simulation::builder()
        .machines(["term1", "red", "green", "blue"])
        .seed(7)
        .build();
    let mut control = sim.controller("term1").expect("controller");
    control.exec("filter f1 term1");
    control.exec("newjob fleet");

    let fleet: Vec<(&str, Vec<Pid>)> = machines
        .iter()
        .map(|m| (*m, spawn_sleepers(&sim, m, PER_MACHINE)))
        .collect();
    let total: usize = fleet.iter().map(|(_, pids)| pids.len()).sum();
    assert!(total >= 1000, "bench must adopt at least 1000 processes");

    let t0 = Instant::now();
    let mut acquired = 0;
    for (machine, pids) in &fleet {
        acquired += control.acquire_many("fleet", machine, pids);
    }
    let batched = t0.elapsed();
    assert_eq!(acquired, total, "every running process was acquired");
    let job = control.job("fleet").expect("job exists");
    assert_eq!(job.procs.len(), total);

    // The classic path, sampled: one `acquire` command per pid.
    const SAMPLE: usize = 64;
    control.exec("newjob sample");
    let sample_pids = spawn_sleepers(&sim, "red", SAMPLE);
    let t1 = Instant::now();
    for pid in &sample_pids {
        let out = control.exec(&format!("acquire sample red {pid}"));
        assert!(out.contains("acquired"), "{out}");
    }
    let per_pid = t1.elapsed();

    let batched_us_per_proc = batched.as_micros() as f64 / total as f64;
    let per_pid_us_per_proc = per_pid.as_micros() as f64 / SAMPLE as f64;
    let entry = BenchEntry::new("controlplane_acquire_many")
        .int("procs", total as u64)
        .int("machines", machines.len() as u64)
        .int("batched_rpcs", machines.len() as u64)
        .num("batched_ms", batched.as_secs_f64() * 1_000.0)
        .num("batched_us_per_proc", batched_us_per_proc)
        .int("per_pid_sample", SAMPLE as u64)
        .num("per_pid_sample_ms", per_pid.as_secs_f64() * 1_000.0)
        .num("per_pid_us_per_proc", per_pid_us_per_proc)
        .num(
            "speedup_per_proc",
            per_pid_us_per_proc / batched_us_per_proc,
        );
    let path = dpm::bench_report::record(&entry).expect("write bench snapshot");
    println!(
        "acquire-many bench -> {}: {total} procs in {:.1}ms batched vs {:.1}us/proc classic",
        path.display(),
        batched.as_secs_f64() * 1_000.0,
        per_pid_us_per_proc
    );

    control.exec("die");
    sim.shutdown();
}

/// An old daemon that predates `AcquireMany` answers the batched
/// request with a plain failure `Ack`; the controller transparently
/// falls back to one classic `Acquire` per pid and the job looks the
/// same. Simulated here end to end by calling `acquire_many` against
/// pids of which some are gone — the per-result path and the job
/// table must agree either way.
#[test]
fn acquire_many_reports_dead_pids_per_result() {
    let sim = Simulation::builder()
        .machines(["term1", "red"])
        .seed(13)
        .build();
    let mut control = sim.controller("term1").expect("controller");
    control.exec("filter f1 term1");
    control.exec("newjob fleet");
    let mut pids = spawn_sleepers(&sim, "red", 3);
    // A pid the machine never allocated: reported Srch per-result,
    // not a batch failure.
    pids.push(Pid(999_999));
    let acquired = control.acquire_many("fleet", "red", &pids);
    assert_eq!(acquired, 3, "live pids acquired, dead pid skipped");
    assert_eq!(control.job("fleet").expect("job").procs.len(), 3);
    control.exec("die");
    sim.shutdown();
}
