//! The paper's debugging story, end to end: a distributed program
//! with a real bug (a datagram sent to the wrong port) hangs; the
//! trace pinpoints both the lost message and the blocked receiver
//! (§5: "a multiprocess computation was developed and debugged using
//! the tool").

use dpm::crates::simos::{BindTo, Domain, SockType};
use dpm::{Simulation, SockName};

#[test]
fn a_hung_computation_is_diagnosed_from_its_trace() {
    let sim = Simulation::builder()
        .machines(["yellow", "red", "green"])
        .seed(99)
        .build();

    // The buggy pair: the sender addresses port 4242, the receiver
    // listens on 4243. Classic.
    sim.cluster().register_program("buggy-sender", |p, _| {
        let s = p.socket(Domain::Inet, SockType::Datagram)?;
        let host = p.cluster().resolve_host("green")?;
        p.sendto(
            s,
            b"where are you",
            &SockName::Inet {
                host: host.0,
                port: 4242,
            },
        )?;
        Ok(())
    });
    sim.cluster().register_program("stuck-receiver", |p, _| {
        let s = p.socket(Domain::Inet, SockType::Datagram)?;
        p.bind(s, BindTo::Port(4243))?;
        let _ = p.recvfrom(s, 64)?; // hangs forever
        Ok(())
    });
    sim.cluster()
        .install_program_file("red", "/bin/buggy-sender", "buggy-sender");
    sim.cluster()
        .install_program_file("green", "/bin/stuck-receiver", "stuck-receiver");

    let mut control = sim.controller("yellow").expect("controller");
    control.exec("filter f1 yellow");
    control.exec("newjob buggy");
    control.exec("addprocess buggy red /bin/buggy-sender");
    control.exec("addprocess buggy green /bin/stuck-receiver");
    control.exec("setflags buggy all");
    control.exec("startjob buggy");

    // The sender finishes; the receiver hangs. Wait for the sender's
    // DONE, then give up on the job (it will never complete).
    let done = control.wait_job("buggy", 2_000);
    assert!(!done, "the bug makes the job hang");
    assert!(
        control
            .transcript()
            .contains("DONE: process buggy-sender in job 'buggy'"),
        "{}",
        control.transcript()
    );

    // The user stops and removes the hung job (stop → killed is the
    // Fig. 4.2 path for abandoning a computation).
    let receiver_pid = control
        .job("buggy")
        .and_then(|j| j.procs.iter().find(|p| p.name == "stuck-receiver"))
        .map(|p| p.pid)
        .expect("receiver tracked");
    control.exec("stopjob buggy");
    control.exec("removejob buggy");
    // Removing the job untracks its processes (no further DONE lines),
    // but the stopped receiver really was killed.
    assert!(control.transcript().contains("'stuck-receiver' removed"));
    let green = sim.cluster().machine("green").unwrap();
    assert_eq!(
        green.wait_exit(receiver_pid),
        Some(dpm::TermReason::Killed),
        "removejob killed the stopped receiver"
    );

    // Now the diagnosis, straight from the trace.
    let a = sim.analyze_log(&mut control, "f1");
    assert_eq!(a.debug.lost_sends.len(), 1, "the misaddressed datagram");
    assert_eq!(a.debug.blocked_receives.len(), 1, "the stuck receive call");
    let blocked = a.debug.blocked_receives[0];
    assert_eq!(blocked.proc.machine, 2, "the receiver on green");
    let report = a.debug.to_string();
    assert!(report.contains("BLOCKED"), "{report}");
    assert!(report.contains("LOST"), "{report}");

    control.exec("die");
    sim.shutdown();
}
