//! Fault injection: the measurement system degrades politely when its
//! own pieces die.

use dpm::crates::meterd::METERD_PROGRAM;
use dpm::Simulation;

/// Find and kill the meterdaemon on a machine (as root would).
fn kill_daemon(sim: &Simulation, machine: &str) {
    let m = sim.cluster().machine(machine).expect("machine");
    for pid in m.procs_named(METERD_PROGRAM) {
        if m.proc_state(pid).is_some_and(|s| !s.is_dead()) {
            let _ = m.signal(None, pid, dpm::crates::simos::Sig::Kill);
        }
    }
}

#[test]
fn controller_reports_failures_when_a_daemon_is_dead() {
    let sim = Simulation::builder()
        .machines(["yellow", "red", "green"])
        .seed(71)
        .build();
    let mut control = sim.controller("yellow").expect("controller");
    control.exec("filter f1 green");
    control.exec("newjob j");

    kill_daemon(&sim, "red");
    std::thread::sleep(std::time::Duration::from_millis(20));

    // Creating a process on the daemon-less machine fails with a
    // reported error instead of hanging or panicking.
    let out = control.exec("addprocess j red /bin/A green");
    assert!(
        out.contains("failed") || out.contains("cannot"),
        "daemonless create must fail visibly: {out}"
    );
    assert!(
        control.job("j").map(|j| j.procs.len()) == Some(0),
        "no phantom process was tracked"
    );
    // The job exists but is empty; other machines still work.
    let out = control.exec("addprocess j green /bin/B");
    assert!(out.contains("created"), "{out}");

    control.exec("die");
    control.exec("die");
    sim.shutdown();
}

#[test]
fn sessions_survive_a_lossy_network() {
    // Controller↔daemon and meter connections are streams; datagram
    // loss must not perturb a session at all.
    let sim = Simulation::builder()
        .machines(["yellow", "red", "green"])
        .net(dpm::NetConfig::lossy())
        .seed(72)
        .build();
    let mut control = sim.controller("yellow").expect("controller");
    control.exec("filter f1 yellow");
    control.exec("newjob foo");
    control.exec("addprocess foo red /bin/A green");
    control.exec("addprocess foo green /bin/B");
    // accept/connect included so the analysis can pair the streams.
    control.exec("setflags foo send receive accept connect");
    control.exec("startjob foo");
    assert!(
        control.wait_job("foo", 120_000),
        "job completed over a lossy net"
    );
    control.exec("removejob foo");
    let a = sim.analyze_log(&mut control, "f1");
    assert!(a.stats.matched > 0, "trace intact");
    control.exec("die");
    sim.shutdown();
}
