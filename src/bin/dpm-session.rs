//! An interactive measurement session — the `<Control>` prompt of the
//! paper's user's manual (§4.3), on your terminal.
//!
//! ```text
//! cargo run --bin dpm-session
//! <Control> help
//! <Control> filter f1 blue
//! <Control> newjob foo
//! <Control> addprocess foo red /bin/A green
//! <Control> addprocess foo green /bin/B
//! <Control> setflags foo send receive fork accept connect
//! <Control> startjob foo
//! <Control> jobs foo
//! <Control> getlog f1 trace
//! <Control> analyze trace          (an addition: run the analyses)
//! <Control> bye
//! ```
//!
//! The simulated machines are `yellow` (your terminal), `red`,
//! `green`, and `blue`, with the example workloads pre-installed in
//! `/bin` on every machine.

use dpm::{Analysis, Simulation};
use std::io::{BufRead, Write};

fn main() {
    let sim = Simulation::builder()
        .machines(["yellow", "red", "green", "blue"])
        .seed(42)
        .build();
    let mut control = sim.controller("yellow").expect("controller starts");
    println!("dpm: distributed programs monitor (simulated 4.2BSD)");
    println!("machines: yellow (you), red, green, blue — type `help`");

    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    loop {
        // Surface any pending DONE/IO notifications first.
        for line in control.pump() {
            println!("{line}");
        }
        print!("<Control> ");
        out.flush().expect("flush stdout");
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF = control-D = die (§4.3)
            Ok(_) => {}
            Err(_) => break,
        }
        let line = line.trim().to_owned();
        // Two extensions beyond the paper's command set: `analyze
        // <tracefile>` runs the analysis routines in place, and
        // `export <simfile> <realfile>` copies a simulated file (e.g.
        // a getlog result) to the real filesystem for `dpm-analyze`.
        if let Some(path) = line.strip_prefix("analyze ") {
            match sim.local_file(&control, path.trim()) {
                Some(data) => {
                    let a = Analysis::of_log(&String::from_utf8_lossy(&data));
                    print!("{}", a.summary());
                }
                None => println!("no local file '{path}' — run getlog first"),
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("export ") {
            let mut it = rest.split_whitespace();
            match (it.next(), it.next()) {
                (Some(sim_path), Some(real_path)) => match sim.local_file(&control, sim_path) {
                    Some(data) => match std::fs::write(real_path, data) {
                        Ok(()) => println!("exported {sim_path} -> {real_path}"),
                        Err(e) => println!("cannot write {real_path}: {e}"),
                    },
                    None => println!("no local file '{sim_path}' — run getlog first"),
                },
                _ => println!("usage: export <simfile> <realfile>"),
            }
            continue;
        }
        let output = control.exec(&line);
        print!("{output}");
        if control.is_done() {
            break;
        }
    }
    sim.shutdown();
}
