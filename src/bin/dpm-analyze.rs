//! Standalone trace analyzer: run the paper's analysis routines over
//! a trace-log file on the real filesystem.
//!
//! ```text
//! cargo run --bin dpm-analyze -- trace.log [--dot] [--debug]
//! ```
//!
//! Produces the §3.3 analyses — communication statistics, measurement
//! of parallelism, structural studies — plus the happens-before
//! summary, and optionally the Graphviz drawing (`--dot`) or the
//! debugging report (`--debug`).

use dpm::Analysis;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path = None;
    let mut want_dot = false;
    let mut want_debug = false;
    let mut want_timeline = false;
    for a in &args {
        match a.as_str() {
            "--dot" => want_dot = true,
            "--debug" => want_debug = true,
            "--timeline" => want_timeline = true,
            "-h" | "--help" => {
                eprintln!("usage: dpm-analyze <trace-log> [--dot] [--debug] [--timeline]");
                return;
            }
            other => path = Some(other.to_owned()),
        }
    }
    let Some(path) = path else {
        eprintln!("usage: dpm-analyze <trace-log> [--dot] [--debug] [--timeline]");
        std::process::exit(2);
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("dpm-analyze: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let a = Analysis::of_log(&text);
    if a.trace.is_empty() {
        eprintln!("dpm-analyze: no event records in {path}");
        std::process::exit(1);
    }
    if want_dot {
        print!("{}", a.structure.to_dot());
        return;
    }
    print!("{}", a.summary());
    println!("--- structure ---");
    print!("{}", a.structure);
    if want_debug {
        println!("--- debugging ---");
        print!("{}", a.debug);
    }
    if want_timeline {
        println!("--- timeline (10 ms buckets, per-machine clocks) ---");
        print!("{}", dpm::crates::analysis::Timeline::analyze(&a.trace, 10));
    }
    // Clock-offset estimates between machine pairs, when derivable.
    if !a.stats.clock_offsets.is_empty() {
        println!("--- clock offsets (ms, B relative to A) ---");
        let mut pairs: Vec<_> = a.stats.clock_offsets.iter().collect();
        pairs.sort_by_key(|(k, _)| **k);
        for ((ma, mb), est) in pairs {
            match est.midpoint_ms() {
                Some(mid) => println!(
                    "machines {ma}->{mb}: offset in [{}, {}], midpoint {mid:.1}",
                    est.lo_ms.unwrap_or_default(),
                    est.hi_ms.unwrap_or_default()
                ),
                None => println!("machines {ma}->{mb}: one-directional traffic only"),
            }
        }
    }
}
