//! Machine-readable benchmark snapshots (`BENCH_workloads.json`).
//!
//! The workload end-to-end tests publish a few headline numbers —
//! events metered, records ingested, analysis wall time — so CI can
//! archive them per run and humans can diff them across commits. The
//! image has no JSON dependency, so the format is hand-rolled and
//! deliberately line-oriented: the file is one JSON object, one entry
//! per line, which lets independent test binaries merge their entries
//! with a plain read-modify-write (cargo runs test binaries in
//! sequence, so there is no interleaving to guard against).
//!
//! The output path defaults to `target/BENCH_workloads.json` and can
//! be redirected with the `DPM_BENCH_OUT` environment variable.

use std::fmt::Write as _;
use std::path::PathBuf;

/// One named benchmark entry: an ordered list of key/value metrics,
/// rendered as a single JSON object line.
#[derive(Debug, Clone)]
pub struct BenchEntry {
    name: String,
    fields: Vec<(String, String)>,
}

impl BenchEntry {
    /// Starts an entry named `name` (the JSON key it merges under).
    #[must_use]
    pub fn new(name: &str) -> BenchEntry {
        BenchEntry {
            name: name.to_owned(),
            fields: Vec::new(),
        }
    }

    /// Adds an integer metric.
    #[must_use]
    pub fn int(mut self, key: &str, value: u64) -> BenchEntry {
        self.fields.push((key.to_owned(), value.to_string()));
        self
    }

    /// Adds a real-valued metric, rendered with three decimals.
    #[must_use]
    pub fn num(mut self, key: &str, value: f64) -> BenchEntry {
        self.fields.push((key.to_owned(), format!("{value:.3}")));
        self
    }

    /// Adds a string metric.
    #[must_use]
    pub fn text(mut self, key: &str, value: &str) -> BenchEntry {
        self.fields
            .push((key.to_owned(), format!("\"{}\"", escape(value))));
        self
    }

    /// The entry as its single JSON line (without a trailing comma).
    fn render(&self) -> String {
        let mut out = format!("\"{}\": {{", escape(&self.name));
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{}\": {}", escape(k), v);
        }
        out.push('}');
        out
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Where the snapshot lives: `$DPM_BENCH_OUT` if set, else
/// `target/BENCH_workloads.json` under the workspace root.
#[must_use]
pub fn bench_out_path() -> PathBuf {
    if let Ok(p) = std::env::var("DPM_BENCH_OUT") {
        return PathBuf::from(p);
    }
    // CARGO_MANIFEST_DIR points at the workspace root for the `dpm`
    // package's integration tests.
    let root = std::env::var("CARGO_MANIFEST_DIR").unwrap_or_else(|_| ".".into());
    PathBuf::from(root)
        .join("target")
        .join("BENCH_workloads.json")
}

/// Merges `entry` into the snapshot file: an existing entry with the
/// same name is replaced, others are kept, and entries stay sorted by
/// name. Returns the path written.
///
/// # Errors
///
/// Propagates I/O errors from reading or writing the snapshot.
pub fn record(entry: &BenchEntry) -> std::io::Result<PathBuf> {
    let path = bench_out_path();
    let mut entries: Vec<(String, String)> = Vec::new();
    if let Ok(existing) = std::fs::read_to_string(&path) {
        for line in existing.lines() {
            let line = line.trim().trim_end_matches(',');
            if line.is_empty() || line == "{" || line == "}" {
                continue;
            }
            // The name is the first quoted string on the line; the
            // writer below guarantees one entry per line.
            if let Some(name) = line.strip_prefix('"').and_then(|r| r.split('"').next()) {
                entries.push((name.to_owned(), line.to_owned()));
            }
        }
    }
    entries.retain(|(name, _)| *name != entry.name);
    entries.push((entry.name.clone(), entry.render()));
    entries.sort();
    let body: Vec<String> = entries.into_iter().map(|(_, line)| line).collect();
    let text = format!("{{\n{}\n}}\n", body.join(",\n"));
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(&path, text)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_render_and_merge_line_by_line() {
        let a = BenchEntry::new("alpha")
            .int("events", 42)
            .num("rate", 1234.5)
            .text("net", "ideal");
        assert_eq!(
            a.render(),
            "\"alpha\": {\"events\": 42, \"rate\": 1234.500, \"net\": \"ideal\"}"
        );

        // Round-trip through the merge logic without touching the
        // default path.
        let dir = std::env::temp_dir().join(format!("dpm-bench-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench.json");
        std::env::set_var("DPM_BENCH_OUT", &path);
        record(&a).unwrap();
        record(&BenchEntry::new("beta").int("x", 1)).unwrap();
        record(&BenchEntry::new("alpha").int("events", 43)).unwrap();
        std::env::remove_var("DPM_BENCH_OUT");
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(
            text,
            "{\n\"alpha\": {\"events\": 43},\n\"beta\": {\"x\": 1}\n}\n"
        );
    }
}
