//! # dpm — A Distributed Programs Monitor for (simulated) Berkeley UNIX
//!
//! A complete Rust reproduction of Miller, Macrander & Sechrest,
//! *A Distributed Programs Monitor for Berkeley UNIX* (UCB CSRG /
//! ICDCS 1985): transparent kernel-resident metering of distributed
//! programs, filter processes with selection rules, meterdaemons for
//! cross-machine process control, an interactive controller, and
//! trace-analysis routines — all running against a faithful simulation
//! of a multi-machine 4.2BSD environment.
//!
//! This crate re-exports [`dpm_core`] and hosts the runnable examples
//! (`examples/quickstart.rs` reproduces the paper's Appendix-B
//! session) and the cross-crate integration tests. Start with
//! [`dpm_core::Simulation`]:
//!
//! ```
//! use dpm::Simulation;
//!
//! let sim = Simulation::builder().machines(["yellow", "red"]).build();
//! let mut control = sim.controller("yellow")?;
//! control.exec("filter f1 red");
//! assert!(control.transcript().contains("created"));
//! control.exec("die");
//! sim.shutdown();
//! # Ok::<(), dpm::SysError>(())
//! ```

pub use dpm_core::*;

pub mod bench_report;

/// The individual subsystem crates, for direct access.
pub mod crates {
    pub use dpm_analysis as analysis;
    pub use dpm_chaos as chaos;
    pub use dpm_controller as controller;
    pub use dpm_controlplane as controlplane;
    pub use dpm_filter as filter;
    pub use dpm_live as live;
    pub use dpm_logstore as logstore;
    pub use dpm_meter as meter;
    pub use dpm_meterd as meterd;
    pub use dpm_simnet as simnet;
    pub use dpm_simos as simos;
    pub use dpm_telemetry as telemetry;
    pub use dpm_workloads as workloads;
}
